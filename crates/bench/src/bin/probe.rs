//! Diagnostic probe: runs one benchmark through all five variants at Eval
//! scale and prints every collected metric on one line per variant.
//!
//! ```sh
//! cargo run --release -p bench --bin probe -- bfs_citation
//! cargo run --release -p bench --bin probe            # all benchmarks
//! ```

use workloads::{Benchmark, Scale, Variant};

fn probe(b: Benchmark) {
    for v in Variant::MAIN {
        let t = std::time::Instant::now();
        let r = match b.run(v, Scale::Eval) {
            Ok(r) => r,
            Err(e) => {
                println!("{:14} {:6}: ** FAILED: {e}", b.name(), v.label());
                continue;
            }
        };
        let wait = r
            .stats
            .avg_waiting_time_opt()
            .map_or("     n/a".to_string(), |w| format!("{w:8.0}"));
        println!(
            "{:14} {:6}: cycles={:9} act={:5.1}% occ={:5.1}% dram_eff={:.3} wait={wait} launches={:6} match={:.2} footprint={:8} wall={:.1?}",
            b.name(),
            v.label(),
            r.stats.cycles,
            r.stats.warp_activity_pct(),
            r.stats.smx_occupancy_pct(),
            r.stats.dram_efficiency(),
            r.stats.dyn_launches(),
            r.stats.match_rate(),
            r.stats.peak_pending_bytes,
            t.elapsed()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for b in Benchmark::ALL {
            probe(b);
        }
        return;
    }
    for a in &args {
        let b = Benchmark::ALL
            .iter()
            .find(|b| b.name() == a)
            .unwrap_or_else(|| {
                eprintln!("unknown benchmark '{a}'; one of:");
                for b in Benchmark::ALL {
                    eprintln!("  {}", b.name());
                }
                std::process::exit(2);
            });
        probe(*b);
    }
}
