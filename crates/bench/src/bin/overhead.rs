//! Regenerates the §4.3 hardware-overhead analysis: 1096 bytes of
//! extension registers and the AGT SRAM cost at several sizes.

use dtbl_core::overhead::{launch_timing, sram_cost, OverheadParams};

fn main() {
    println!("Hardware overhead analysis (paper §4.3)");
    println!("----------------------------------------");
    for entries in [512u32, 1024, 2048] {
        let c = sram_cost(&OverheadParams {
            agt_entries: entries,
            ..OverheadParams::default()
        });
        println!(
            "AGT {entries:>5} entries: extension regs {:>5} B (KDE {} + FCFS {} + TBCR {}), AGT {:>6} B, total {:>6} B",
            c.extension_register_bytes(),
            c.kde_ext_bytes,
            c.fcfs_bytes,
            c.tbcr_bytes,
            c.agt_bytes,
            c.total_bytes()
        );
    }
    let c = sram_cost(&OverheadParams::default());
    assert_eq!(c.extension_register_bytes(), 1096, "paper's figure");
    assert_eq!(c.agt_bytes, 20 * 1024, "paper's 20KB @ 1024 entries");
    println!();
    let t = launch_timing(32);
    println!(
        "Launch timing: KDE eligibility search {} cycles (pipelined, 1/entry), AGT hash probe {} cycle",
        t.kde_search_cycles, t.agt_probe_cycles
    );
    println!(
        "\nPaper check: 1096 B extension registers reproduced = {}",
        c.extension_register_bytes() == 1096
    );
}
