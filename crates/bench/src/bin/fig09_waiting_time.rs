//! Figure 9: average waiting time (launch to first thread-block start)
//! for a device kernel or an aggregated group, in kilocycles.

use bench::{print_figure, scale_from_args, SweepRunner, TraceOpts};
use workloads::{Benchmark, Variant};

fn main() {
    let scale = scale_from_args();
    let trace = TraceOpts::from_args();
    let variants = [
        Variant::CdpIdeal,
        Variant::DtblIdeal,
        Variant::Cdp,
        Variant::Dtbl,
    ];
    let mut m = SweepRunner::from_args().run_matrix_with(
        &Benchmark::ALL,
        &variants,
        scale,
        trace.gpu_config(),
    );
    let benchmarks = m.ok_benchmarks(&Benchmark::ALL, &variants);
    print_figure(
        "Figure 9: Average Waiting Time for a Kernel or an Aggregated Group (kcycles)",
        &benchmarks,
        &["CDPI", "DTBLI", "CDP", "DTBL"],
        |b, s| {
            let v = variants.iter().find(|v| v.label() == s).expect("series");
            // `None` (no started dynamic launch) renders as 0.0, same as
            // the paper's empty bars for launch-free benchmarks.
            m.get(b, *v).stats.avg_waiting_time_opt().unwrap_or(0.0) / 1000.0
        },
        |v| format!("{v:.1}"),
    );
    // Relative reductions over launch-bearing benchmarks only; a variant
    // pair where either side recorded no waiting time drops out of the
    // geomean instead of polluting it with a fake zero.
    let launching: Vec<Benchmark> = benchmarks
        .iter()
        .copied()
        .filter(|&b| m.get(b, Variant::Dtbl).stats.dyn_launches() > 0)
        .collect();
    let red = |a: Variant, b: Variant| {
        100.0
            * (1.0
                - bench::geomean(launching.iter().filter_map(|&bm| {
                    let num = m.get(bm, b).stats.avg_waiting_time_opt()?;
                    let den = m.get(bm, a).stats.avg_waiting_time_opt()?;
                    Some(num.max(1.0) / den.max(1.0))
                })))
    };
    println!(
        "\nWaiting-time reduction DTBLI vs CDPI: {:.1}% (paper: 18.8%); DTBL vs CDP: {:.1}% (paper: 24.1%)",
        red(Variant::CdpIdeal, Variant::DtblIdeal),
        red(Variant::Cdp, Variant::Dtbl),
    );
    trace.write(&mut m, &Benchmark::ALL, &variants);
    m.report_failures();
}
