//! Figure 12: performance sensitivity to the AGT size — DTBL runtime at
//! 512/1024/2048 AGT entries, normalized to 1024.

use bench::{print_figure, scale_from_args, SweepRunner};
use gpu_sim::GpuConfig;
use std::collections::{HashMap, HashSet};
use workloads::{Benchmark, Scale, Variant};

fn main() {
    let scale = scale_from_args();
    let runner = SweepRunner::from_args();
    // The paper sweeps 512/1024/2048 against pending-group populations in
    // the tens of thousands; this reproduction's inputs are 100-1000x
    // smaller, so the same mechanism (hash-slot conflicts -> descriptor
    // spills -> global-memory walks) is exercised with a proportionally
    // scaled sweep alongside the paper's sizes.
    let sizes = [32usize, 128, 512, 1024, 2048];
    let cells: Vec<(Benchmark, usize)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| sizes.iter().map(move |&s| (b, s)))
        .collect();
    // At Test scale shrink the AGT proportionally so the sweep still
    // exercises overflow.
    let entries_at = |s: usize| if scale == Scale::Test { s / 16 } else { s };
    let results = runner.run_cells(
        cells,
        |&(b, s)| {
            let mut cfg = GpuConfig {
                agt_entries: entries_at(s),
                ..GpuConfig::k20c()
            };
            // Detailed walk timing: a spilled descriptor costs an
            // un-prefetched global fetch before its group can schedule.
            cfg.pipeline.agt_overflow_load = 150;
            b.run_with(Variant::Dtbl, scale, cfg)
        },
        |&(b, s)| format!("{} AGT={}", b.name(), entries_at(s)),
    );
    let mut cycles: HashMap<(Benchmark, usize), u64> = HashMap::new();
    let mut failed: HashSet<Benchmark> = HashSet::new();
    for ((b, s), result) in results {
        match result {
            Ok(r) => {
                cycles.insert((b, s), r.stats.cycles);
            }
            Err(e) => {
                eprintln!("  ** {} AGT={} FAILED: {e}", b.name(), entries_at(s));
                failed.insert(b);
            }
        }
    }
    let benchmarks: Vec<Benchmark> = Benchmark::ALL
        .iter()
        .copied()
        .filter(|b| !failed.contains(b))
        .collect();
    print_figure(
        "Figure 12: Performance Sensitivity to AGT Size (speedup normalized to 1024 entries)",
        &benchmarks,
        &["32", "128", "512", "1024", "2048"],
        |b, s| {
            let sz: usize = s.parse().expect("size");
            cycles[&(b, 1024)] as f64 / cycles[&(b, sz)].max(1) as f64
        },
        |v| format!("{v:.3}"),
    );
    println!("\n(paper: 512 entries cause 1.31x slowdown, 2048 give 1.20x speedup on average;");
    println!(" launch-dense benchmarks — bht, regx — are the most sensitive)");
    if !failed.is_empty() {
        eprintln!("\n{} benchmark(s) FAILED and were excluded:", failed.len());
        for b in &failed {
            eprintln!("  {}", b.name());
        }
    }
}
