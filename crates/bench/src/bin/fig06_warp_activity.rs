//! Figure 6: average percentage of active threads in a warp, for the
//! Flat, CDP and DTBL implementations of every benchmark.

use bench::{print_figure, scale_from_args, SweepRunner, TraceOpts};
use workloads::{Benchmark, Variant};

fn main() {
    let scale = scale_from_args();
    let variants = [Variant::Flat, Variant::Cdp, Variant::Dtbl];
    let trace = TraceOpts::from_args();
    let mut m = SweepRunner::from_args().run_matrix_with(
        &Benchmark::ALL,
        &variants,
        scale,
        trace.gpu_config(),
    );
    let benchmarks = m.ok_benchmarks(&Benchmark::ALL, &variants);
    print_figure(
        "Figure 6: Warp Activity Percentage",
        &benchmarks,
        &["Flat", "CDP", "DTBL"],
        |b, s| {
            let v = variants.iter().find(|v| v.label() == s).expect("series");
            m.get(b, *v).stats.warp_activity_pct()
        },
        |v| format!("{v:.1}%"),
    );
    let delta: f64 = benchmarks
        .iter()
        .map(|&b| {
            m.get(b, Variant::Dtbl).stats.warp_activity_pct()
                - m.get(b, Variant::Flat).stats.warp_activity_pct()
        })
        .sum::<f64>()
        / benchmarks.len().max(1) as f64;
    println!("\nAverage DTBL warp-activity gain over Flat: {delta:+.1} points (paper: +10.7)");
    trace.write(&mut m, &Benchmark::ALL, &variants);
    m.report_failures();
}
