//! Figure 7: DRAM efficiency `(n_rd + n_wr) / n_activity` for Flat, CDP
//! and DTBL.

use bench::{print_figure, scale_from_args, SweepRunner, TraceOpts};
use workloads::{Benchmark, Variant};

fn main() {
    let scale = scale_from_args();
    let variants = [Variant::Flat, Variant::Cdp, Variant::Dtbl];
    let trace = TraceOpts::from_args();
    let mut m = SweepRunner::from_args().run_matrix_with(
        &Benchmark::ALL,
        &variants,
        scale,
        trace.gpu_config(),
    );
    let benchmarks = m.ok_benchmarks(&Benchmark::ALL, &variants);
    print_figure(
        "Figure 7: DRAM Efficiency",
        &benchmarks,
        &["Flat", "CDP", "DTBL"],
        |b, s| {
            let v = variants.iter().find(|v| v.label() == s).expect("series");
            m.get(b, *v).stats.dram_efficiency()
        },
        |v| format!("{v:.3}"),
    );
    let rel: f64 = bench::geomean(benchmarks.iter().map(|&b| {
        let f = m.get(b, Variant::Flat).stats.dram_efficiency().max(1e-9);
        m.get(b, Variant::Dtbl).stats.dram_efficiency() / f
    }));
    println!("\nDTBL / Flat DRAM-efficiency ratio (geomean): {rel:.2}x (paper: 1.27x)");
    trace.write(&mut m, &Benchmark::ALL, &variants);
    m.report_failures();
}
