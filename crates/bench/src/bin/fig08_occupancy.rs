//! Figure 8: SMX occupancy (average resident warps / maximum resident
//! warps) for CDPI, DTBLI, CDP and DTBL.

use bench::{print_figure, scale_from_args, SweepRunner, TraceOpts};
use workloads::{Benchmark, Variant};

fn main() {
    let scale = scale_from_args();
    let variants = [
        Variant::CdpIdeal,
        Variant::DtblIdeal,
        Variant::Cdp,
        Variant::Dtbl,
    ];
    let trace = TraceOpts::from_args();
    let mut m = SweepRunner::from_args().run_matrix_with(
        &Benchmark::ALL,
        &variants,
        scale,
        trace.gpu_config(),
    );
    let benchmarks = m.ok_benchmarks(&Benchmark::ALL, &variants);
    print_figure(
        "Figure 8: SMX Occupancy",
        &benchmarks,
        &["CDPI", "DTBLI", "CDP", "DTBL"],
        |b, s| {
            let v = variants.iter().find(|v| v.label() == s).expect("series");
            m.get(b, *v).stats.smx_occupancy_pct()
        },
        |v| format!("{v:.1}%"),
    );
    let avg = |v: Variant| {
        benchmarks
            .iter()
            .map(|&b| m.get(b, v).stats.smx_occupancy_pct())
            .sum::<f64>()
            / benchmarks.len().max(1) as f64
    };
    println!(
        "\nDTBLI - CDPI occupancy: {:+.1} points (paper: +17.9); DTBL - CDP: {:+.1} points",
        avg(Variant::DtblIdeal) - avg(Variant::CdpIdeal),
        avg(Variant::Dtbl) - avg(Variant::Cdp),
    );
    trace.write(&mut m, &Benchmark::ALL, &variants);
    m.report_failures();
}
