//! Daemon smoke gate: proves the `gpu-serve` network path end to end on
//! loopback, against the in-process sweep as ground truth.
//!
//! Checks, in order:
//!
//! 1. **Bit-identity** — every report served over TCP equals the report
//!    `run_matrix_on` computes in-process for the same cell, field for
//!    field (the wire codec is exact for integer stats).
//! 2. **Cache effectiveness** — four concurrent clients submit the same
//!    8-cell batch after a seeding pass; the daemon's METRICS endpoint
//!    must show a ≥ 50% cache hit rate.
//! 3. **Fair admission** — under that symmetric load, no client's p95
//!    admission latency may exceed 3× another's (latencies below 1 ms
//!    are floored to 1 ms first — at that point "fairness" is noise).
//! 4. **Cache persistence** — a daemon restarted with the same
//!    `--cache-file` serves a previously-computed cell as a hit, with
//!    zero misses and identical stats.
//!
//! Exits non-zero on the first failed check. Usage: `daemon_smoke
//! [--jobs N]` (worker width for both daemon and reference sweep).

use bench::SweepRunner;
use gpu_serve::client::{snapshot_counter, snapshot_percentile};
use gpu_serve::{serve, Client, ConfigPreset, ServeConfig, SubmitSpec};
use gpu_sim::{GpuConfig, Stats};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;
use workloads::{Benchmark, Scale, Variant};

const BENCHES: [Benchmark; 4] = [
    Benchmark::Amr,
    Benchmark::BfsUsaRoad,
    Benchmark::JoinGaussian,
    Benchmark::RegxString,
];
const VARIANTS: [Variant; 2] = [Variant::Flat, Variant::Dtbl];
const WAIT: Duration = Duration::from_secs(300);
const CLIENTS: usize = 4;

fn cells() -> Vec<(Benchmark, Variant)> {
    let mut out = Vec::new();
    for &b in &BENCHES {
        for &v in &VARIANTS {
            out.push((b, v));
        }
    }
    out
}

fn spec(b: Benchmark, v: Variant, client: &str) -> SubmitSpec {
    SubmitSpec {
        benchmark: b,
        variant: v,
        scale: Scale::Test,
        client: client.to_string(),
        weight: 1,
        preset: ConfigPreset::TestSmall,
        max_cycles: None,
        cycle_cap: None,
        trace: false,
    }
}

/// Submits the full batch as `client`, waits for every job, and returns
/// the stats per cell.
fn run_batch_as(addr: SocketAddr, client: &str) -> HashMap<(Benchmark, Variant), Stats> {
    let mut c = Client::connect(addr).expect("connect");
    let jobs: Vec<(u64, (Benchmark, Variant))> = cells()
        .into_iter()
        .map(|(b, v)| (c.submit(&spec(b, v, client)).expect("submit"), (b, v)))
        .collect();
    jobs.into_iter()
        .map(|(job, cell)| {
            let report = c.wait(job, WAIT).expect("wait");
            (cell, report.stats)
        })
        .collect()
}

fn check(failures: &mut u32, ok: bool, what: &str) {
    if ok {
        eprintln!("daemon_smoke: PASS {what}");
    } else {
        eprintln!("daemon_smoke: FAIL {what}");
        *failures += 1;
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let mut failures = 0u32;

    // Ground truth: the same cells through the in-process sweep.
    eprintln!("daemon_smoke: computing in-process reference matrix ({jobs} worker(s))");
    let runner = SweepRunner::new(jobs);
    let reference = runner.server();
    let matrix = runner.run_matrix_on(
        &reference,
        &BENCHES,
        &VARIANTS,
        Scale::Test,
        GpuConfig::test_small(),
    );
    matrix.report_failures();

    let handle = serve(ServeConfig {
        jobs,
        ..ServeConfig::default()
    })
    .expect("bind loopback daemon");
    let addr = handle.addr;
    eprintln!("daemon_smoke: daemon on {addr}");

    // 1. Seeding pass + bit-identity vs the in-process path.
    let seeded = run_batch_as(addr, "seed");
    let identical = cells().iter().all(|cell| {
        let daemon = &seeded[cell];
        let local = &matrix.get(cell.0, cell.1).stats;
        if daemon != local {
            eprintln!(
                "  mismatch {} {}: daemon {} cycles vs local {}",
                cell.0.name(),
                cell.1.label(),
                daemon.cycles,
                local.cycles
            );
        }
        daemon == local
    });
    check(
        &mut failures,
        identical,
        "stats over TCP bit-identical to in-process sweep",
    );

    // 2. Four concurrent clients replay the batch against the warm cache.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| std::thread::spawn(move || run_batch_as(addr, &format!("client{i}"))))
        .collect();
    let per_client: Vec<HashMap<(Benchmark, Variant), Stats>> = workers
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let replay_identical = per_client.iter().all(|got| {
        cells()
            .iter()
            .all(|cell| got[cell] == matrix.get(cell.0, cell.1).stats)
    });
    check(
        &mut failures,
        replay_identical,
        "all concurrent clients read bit-identical cached stats",
    );

    let mut c = Client::connect(addr).expect("connect for metrics");
    let snapshot = c.metrics().expect("metrics");
    let hits = snapshot_counter(&snapshot, "server.cache_hits");
    let misses = snapshot_counter(&snapshot, "server.cache_misses");
    let rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    eprintln!("daemon_smoke: cache hits {hits}, misses {misses}, rate {rate:.3}");
    check(
        &mut failures,
        rate >= 0.5,
        "METRICS endpoint shows >= 50% cache hit rate on the duplicated batch",
    );

    // 3. Fairness: symmetric load, so per-client p95 admission latency
    // must stay within 3x (1 ms floor — below that it's scheduler noise).
    let p95s: Vec<u64> = (0..CLIENTS)
        .map(|i| {
            snapshot_percentile(&snapshot, &format!("admission.wait_us.client{i}"), "p95")
                .unwrap_or(0)
                .max(1_000)
        })
        .collect();
    let (lo, hi) = (
        *p95s.iter().min().expect("clients"),
        *p95s.iter().max().expect("clients"),
    );
    eprintln!("daemon_smoke: per-client p95 admission wait (us, floored): {p95s:?}");
    check(
        &mut failures,
        hi <= lo * 3,
        "round-robin admission: no client p95 wait > 3x another's",
    );
    c.shutdown().expect("shutdown");
    handle.wait();

    // 4. Persistence across a restart.
    let mut cache_file = std::env::temp_dir();
    cache_file.push(format!("daemon-smoke-cache-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&cache_file);
    let persist_cfg = ServeConfig {
        jobs,
        cache_file: Some(cache_file.clone()),
        ..ServeConfig::default()
    };
    let handle = serve(persist_cfg.clone()).expect("bind persisting daemon");
    let mut c = Client::connect(handle.addr).expect("connect");
    let job = c
        .submit(&spec(Benchmark::Amr, Variant::Dtbl, "persist"))
        .expect("submit");
    let before = c.wait(job, WAIT).expect("wait").stats;
    c.shutdown().expect("shutdown");
    handle.wait();

    let handle = serve(persist_cfg).expect("rebind with cache file");
    let mut c = Client::connect(handle.addr).expect("reconnect");
    let job = c
        .submit(&spec(Benchmark::Amr, Variant::Dtbl, "persist"))
        .expect("resubmit");
    let after = c.wait(job, WAIT).expect("wait").stats;
    let snapshot = c.metrics().expect("metrics");
    let restart_hits = snapshot_counter(&snapshot, "server.cache_hits");
    let restart_misses = snapshot_counter(&snapshot, "server.cache_misses");
    check(
        &mut failures,
        before == after && restart_hits >= 1 && restart_misses == 0,
        "restarted daemon serves the persisted cell as a hit (no re-run, same stats)",
    );
    c.shutdown().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_file(&cache_file);

    if failures == 0 {
        println!("daemon_smoke: all checks passed");
    } else {
        println!("daemon_smoke: {failures} check(s) FAILED");
        std::process::exit(1);
    }
}
