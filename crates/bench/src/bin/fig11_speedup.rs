//! Figure 11: overall performance — speedup over the flat implementation
//! for CDPI, DTBLI, CDP and DTBL.

use bench::{geomean, print_figure, scale_from_args, SweepRunner, TraceOpts};
use workloads::{Benchmark, Variant};

fn main() {
    let scale = scale_from_args();
    let trace = TraceOpts::from_args();
    let mut m = SweepRunner::from_args().run_matrix_with(
        &Benchmark::ALL,
        &Variant::MAIN,
        scale,
        trace.gpu_config(),
    );
    let benchmarks = m.ok_benchmarks(&Benchmark::ALL, &Variant::MAIN);
    let speedup = |b: Benchmark, v: Variant| {
        m.get(b, Variant::Flat).stats.cycles as f64 / m.get(b, v).stats.cycles.max(1) as f64
    };
    print_figure(
        "Figure 11: Speedup over Flat Implementation",
        &benchmarks,
        &["CDPI", "DTBLI", "CDP", "DTBL"],
        |b, s| {
            let v = match s {
                "CDPI" => Variant::CdpIdeal,
                "DTBLI" => Variant::DtblIdeal,
                "CDP" => Variant::Cdp,
                _ => Variant::Dtbl,
            };
            speedup(b, v)
        },
        |v| format!("{v:.2}x"),
    );
    for (v, paper) in [
        (Variant::CdpIdeal, 1.43),
        (Variant::DtblIdeal, 1.63),
        (Variant::Cdp, 0.86),
        (Variant::Dtbl, 1.21),
    ] {
        let g = geomean(benchmarks.iter().map(|&b| speedup(b, v)));
        println!(
            "geomean {:6}: {g:.2}x   (paper avg: {paper:.2}x)",
            v.label()
        );
    }
    let dtbl_over_cdp = geomean(
        benchmarks
            .iter()
            .map(|&b| speedup(b, Variant::Dtbl) / speedup(b, Variant::Cdp)),
    );
    println!("geomean DTBL over CDP: {dtbl_over_cdp:.2}x   (paper avg: 1.40x)");
    trace.write(&mut m, &Benchmark::ALL, &Variant::MAIN);
    m.report_failures();
}
