//! Experiment harness for the DTBL reproduction.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation section (see the per-experiment index in
//! `DESIGN.md`); this library holds the shared matrix runner and the
//! plain-text "figure" renderer they use.

#![warn(missing_docs)]

use gpu_sim::sweep::CellOutcome;
use gpu_sim::{BatchServer, GpuConfig, RunBudget, SimError};
use gpu_trace::{Category, TraceConfig, TraceData};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use workloads::{Benchmark, CellSetup, RunReport, Scale, Variant};

/// Fans independent simulation runs out over a bounded pool of worker
/// threads (`gpu_sim::sweep` underneath — std scoped threads, no external
/// dependencies).
///
/// Every cell builds its own GPU and seeds its own deterministic
/// `sim-rand` streams, so per-run results are bit-identical to a serial
/// loop no matter how many workers run them; only the wall clock and the
/// interleaving of progress lines change. All sweep-bearing binaries
/// (`all_figures`, `ablation`, `fig06`–`fig12`) construct one with
/// [`SweepRunner::from_args`], so `--jobs N` works everywhere.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    jobs: usize,
    retries: u32,
}

impl SweepRunner {
    /// A runner with a fixed worker count (clamped to at least 1) and no
    /// crash quarantine.
    pub fn new(jobs: usize) -> Self {
        SweepRunner {
            jobs: jobs.max(1),
            retries: 0,
        }
    }

    /// A runner configured from the command line: `--jobs N` (or
    /// `--jobs=N`) pins the worker count; without the flag it uses the
    /// machine's available parallelism. `--retries N` opts the sweep into
    /// supervised execution (see [`SweepRunner::with_retries`]).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let retries = flag_value(&args, "--retries")
            .map(|n| {
                n.parse().unwrap_or_else(|_| {
                    eprintln!("--retries expects a non-negative integer, got {n:?}");
                    std::process::exit(2);
                })
            })
            .unwrap_or(0);
        SweepRunner::new(jobs_from_args()).with_retries(retries)
    }

    /// Opts the sweep into supervised execution: a panicking cell is
    /// isolated (`gpu_sim::sweep::run_cells_supervised`), retried up to
    /// `retries` times in quarantine, and — if it keeps crashing —
    /// recorded as a [`SimError::CellCrashed`] failure instead of taking
    /// the whole sweep down. With `retries == 0` (the default) the sweep
    /// runs unsupervised and a panic propagates after the siblings
    /// finish.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The worker count this runner fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `benchmarks × variants` at `scale` over the worker pool. A
    /// run that fails — output diverging from the host reference, a hang,
    /// an exhausted hardware structure — is recorded in
    /// [`failures`](Matrix::failures) and the sweep continues, so one
    /// broken benchmark never costs the rest of an Eval-scale run.
    /// Per-run completion lines stream to stderr as workers finish.
    pub fn run_matrix(
        &self,
        benchmarks: &[Benchmark],
        variants: &[Variant],
        scale: Scale,
    ) -> Matrix {
        self.run_matrix_with(benchmarks, variants, scale, GpuConfig::k20c())
    }

    /// [`run_matrix`](SweepRunner::run_matrix) with an explicit GPU
    /// configuration applied to every cell — how the figure binaries
    /// enable tracing ([`TraceOpts::gpu_config`]) for a whole sweep.
    ///
    /// Runs on a private warm-pool [`BatchServer`] sized to this runner:
    /// the benchmark's setup (data build + kernel decode) is paid once and
    /// shared by its variant cells, and after the first `jobs` cells every
    /// run binds a pooled simulator via reset + bind instead of a cold
    /// construction. Per-run results stay bit-identical to the cold path
    /// (pinned by the `engine_equivalence` differential tests).
    pub fn run_matrix_with(
        &self,
        benchmarks: &[Benchmark],
        variants: &[Variant],
        scale: Scale,
        cfg: GpuConfig,
    ) -> Matrix {
        self.run_matrix_on(&self.server(), benchmarks, variants, scale, cfg)
    }

    /// A warm-pool batch server sized to this runner (`jobs` pooled
    /// simulators, this runner's crash-retry policy). Reuse one server
    /// across several [`run_matrix_on`](SweepRunner::run_matrix_on) calls
    /// to keep its pool warm and serve repeated cells from the result
    /// cache.
    pub fn server(&self) -> BatchServer<RunReport> {
        BatchServer::new(self.jobs, self.retries)
    }

    /// [`run_matrix_with`](SweepRunner::run_matrix_with) on a shared
    /// `server`. Cells whose [`gpu_sim::CellKey`] (config content hash,
    /// benchmark, scale, variant) is already cached are served without
    /// simulating; everything else runs on the server's warm pool.
    pub fn run_matrix_on(
        &self,
        server: &BatchServer<RunReport>,
        benchmarks: &[Benchmark],
        variants: &[Variant],
        scale: Scale,
        cfg: GpuConfig,
    ) -> Matrix {
        let t0 = Instant::now();
        let mut m = Matrix::default();

        // Phase 1: one immutable CellSetup per benchmark (workload data +
        // every variant's program), built over the worker pool. A
        // benchmark whose setup fails records a failure for each of its
        // cells and drops out of the run phase.
        let built = gpu_sim::sweep::run_cells(benchmarks.to_vec(), self.jobs, |&b| {
            CellSetup::new(b, scale, cfg.clone())
        });
        let mut setups: Vec<Arc<CellSetup>> = Vec::new();
        for (b, r) in built {
            match r {
                Ok(setup) => setups.push(Arc::new(setup)),
                Err(e) => {
                    for &v in variants {
                        m.failures.push((b, v, e.clone()));
                    }
                }
            }
        }

        // Phase 2: drain benchmark × variant through the server.
        let cells = matrix_cells(&setups, variants);
        let total = cells.len();
        let finished = AtomicUsize::new(0);
        let outcomes = server.run_batch(
            cells,
            |(s, v)| Some(s.cell_key(*v)),
            |(s, v), slot| {
                let t = Instant::now();
                let r = s.run_warm(*v, slot);
                let k = finished.fetch_add(1, Ordering::Relaxed) + 1;
                match &r {
                    Ok(rep) => eprintln!(
                        "  [{k:>3}/{total}] {:14} {:7} {} cycles, {} launches, {:.1?}",
                        s.benchmark().name(),
                        v.label(),
                        rep.stats.cycles,
                        rep.stats.dyn_launches(),
                        t.elapsed(),
                    ),
                    Err(e) => eprintln!(
                        "  [{k:>3}/{total}] {:14} {:7} ** FAILED: {e}",
                        s.benchmark().name(),
                        v.label()
                    ),
                }
                r
            },
        );
        for ((s, v), outcome) in outcomes {
            let b = s.benchmark();
            match outcome {
                CellOutcome::Ok(rep) => {
                    m.reports.insert((b, v), rep);
                }
                CellOutcome::Err(e) => m.failures.push((b, v, e)),
                CellOutcome::Crashed(rep) => {
                    eprintln!("  {:14} {:7} ** {rep}", b.name(), v.label());
                    m.failures.push((
                        b,
                        v,
                        SimError::CellCrashed {
                            attempts: rep.attempts,
                            payload: rep.payload,
                        },
                    ));
                }
            }
        }
        self.report_wall_clock(total, t0);
        m
    }

    /// The pre-server sweep: every cell builds its workload data, decodes
    /// its program, and constructs a fresh simulator. Kept as the cold
    /// construction-per-run baseline that `perf_probe` compares the warm
    /// pool against.
    pub fn run_matrix_cold(
        &self,
        benchmarks: &[Benchmark],
        variants: &[Variant],
        scale: Scale,
        cfg: GpuConfig,
    ) -> Matrix {
        let cells: Vec<(Benchmark, Variant)> = benchmarks
            .iter()
            .flat_map(|&b| variants.iter().map(move |&v| (b, v)))
            .collect();
        let total = cells.len();
        let finished = AtomicUsize::new(0);
        let t0 = Instant::now();
        let run = |&(b, v): &(Benchmark, Variant)| -> Result<RunReport, SimError> {
            let t = Instant::now();
            let r = b.run_with(v, scale, cfg.clone());
            let k = finished.fetch_add(1, Ordering::Relaxed) + 1;
            match &r {
                Ok(rep) => eprintln!(
                    "  [{k:>3}/{total}] {:14} {:7} {} cycles, {} launches, {:.1?}",
                    b.name(),
                    v.label(),
                    rep.stats.cycles,
                    rep.stats.dyn_launches(),
                    t.elapsed(),
                ),
                Err(e) => eprintln!(
                    "  [{k:>3}/{total}] {:14} {:7} ** FAILED: {e}",
                    b.name(),
                    v.label()
                ),
            }
            r
        };
        let results: Vec<((Benchmark, Variant), Result<RunReport, SimError>)> = if self.retries == 0
        {
            gpu_sim::sweep::run_cells(cells, self.jobs, run)
        } else {
            gpu_sim::sweep::run_cells_supervised(cells, self.jobs, self.retries, run)
                .into_iter()
                .map(|((b, v), outcome)| {
                    let r = match outcome {
                        CellOutcome::Ok(rep) => Ok(rep),
                        CellOutcome::Err(e) => Err(e),
                        CellOutcome::Crashed(rep) => {
                            eprintln!("  {:14} {:7} ** {rep}", b.name(), v.label());
                            Err(SimError::CellCrashed {
                                attempts: rep.attempts,
                                payload: rep.payload,
                            })
                        }
                    };
                    ((b, v), r)
                })
                .collect()
        };
        self.report_wall_clock(total, t0);
        let mut m = Matrix::default();
        for ((b, v), r) in results {
            match r {
                Ok(rep) => {
                    m.reports.insert((b, v), rep);
                }
                Err(e) => m.failures.push((b, v, e)),
            }
        }
        m
    }

    /// Runs an arbitrary list of cells over the worker pool, returning
    /// `(cell, result)` pairs in input order. `label` names a cell in the
    /// streamed progress lines. Used by the binaries whose sweeps are not
    /// a plain benchmark × variant matrix (custom configs, AGT sizes).
    pub fn run_cells<C, T>(
        &self,
        cells: Vec<C>,
        run: impl Fn(&C) -> Result<T, SimError> + Sync,
        label: impl Fn(&C) -> String + Sync,
    ) -> Vec<(C, Result<T, SimError>)>
    where
        C: Send + Sync,
        T: Send,
    {
        let total = cells.len();
        let finished = AtomicUsize::new(0);
        let t0 = Instant::now();
        let results = gpu_sim::sweep::run_cells(cells, self.jobs, |cell| {
            let t = Instant::now();
            let r = run(cell);
            let k = finished.fetch_add(1, Ordering::Relaxed) + 1;
            match &r {
                Ok(_) => eprintln!(
                    "  [{k:>3}/{total}] {} done in {:.1?}",
                    label(cell),
                    t.elapsed()
                ),
                Err(e) => eprintln!("  [{k:>3}/{total}] {} ** FAILED: {e}", label(cell)),
            }
            r
        });
        self.report_wall_clock(total, t0);
        results
    }

    fn report_wall_clock(&self, total: usize, t0: Instant) {
        eprintln!(
            "  sweep: {total} run(s) on {} worker(s) in {:.1?}",
            self.jobs,
            t0.elapsed()
        );
    }
}

/// Expands per-benchmark setups into the server's cell list: every
/// variant cell of one benchmark holds an `Arc` clone of the *same*
/// [`CellSetup`], so the workload data and decoded kernels are built once
/// per benchmark, not once per cell.
fn matrix_cells(setups: &[Arc<CellSetup>], variants: &[Variant]) -> Vec<(Arc<CellSetup>, Variant)> {
    setups
        .iter()
        .flat_map(|s| variants.iter().map(move |&v| (Arc::clone(s), v)))
        .collect()
}

/// Parses `--jobs N` / `--jobs=N` from the command line; defaults to the
/// machine's available parallelism when absent.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let parse = |v: &str| -> usize {
        v.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--jobs expects a positive integer, got {v:?}");
                std::process::exit(2);
            })
    };
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            return parse(v);
        }
        if a == "--jobs" {
            if let Some(v) = args.get(i + 1) {
                return parse(v);
            }
            eprintln!("--jobs expects a value");
            std::process::exit(2);
        }
    }
    gpu_sim::sweep::default_jobs()
}

/// Results of running benchmarks × variants.
#[derive(Debug, Default)]
pub struct Matrix {
    reports: HashMap<(Benchmark, Variant), RunReport>,
    failures: Vec<(Benchmark, Variant, SimError)>,
}

impl Matrix {
    /// Runs `benchmarks × variants` at `scale` serially on the calling
    /// thread. Equivalent to `SweepRunner::new(1).run_matrix(...)`; the
    /// figure binaries use [`SweepRunner::from_args`] instead so `--jobs`
    /// applies.
    pub fn run(benchmarks: &[Benchmark], variants: &[Variant], scale: Scale) -> Self {
        SweepRunner::new(1).run_matrix(benchmarks, variants, scale)
    }

    /// A single run's report.
    ///
    /// # Panics
    ///
    /// Panics if the combination was not part of the matrix.
    pub fn get(&self, b: Benchmark, v: Variant) -> &RunReport {
        self.reports
            .get(&(b, v))
            .unwrap_or_else(|| panic!("no report for {b} [{v}]"))
    }

    /// Whether a combination was run successfully.
    pub fn contains(&self, b: Benchmark, v: Variant) -> bool {
        self.reports.contains_key(&(b, v))
    }

    /// Every run that failed, with its typed error.
    pub fn failures(&self) -> &[(Benchmark, Variant, SimError)] {
        &self.failures
    }

    /// The subset of `benchmarks` for which every variant in `variants`
    /// completed — the rows a figure can safely render.
    pub fn ok_benchmarks(&self, benchmarks: &[Benchmark], variants: &[Variant]) -> Vec<Benchmark> {
        benchmarks
            .iter()
            .copied()
            .filter(|&b| variants.iter().all(|&v| self.contains(b, v)))
            .collect()
    }

    /// Detaches the recorded event traces of `benchmarks × variants`, in
    /// input order (the order the sweep was handed its cells, independent
    /// of worker interleaving), labelling each cell
    /// `<benchmark>/<variant>`. Failed and untraced cells are skipped.
    pub fn take_traces(
        &mut self,
        benchmarks: &[Benchmark],
        variants: &[Variant],
    ) -> Vec<(String, TraceData)> {
        let mut out = Vec::new();
        for &b in benchmarks {
            for &v in variants {
                if let Some(t) = self.reports.get_mut(&(b, v)).and_then(|r| r.trace.take()) {
                    out.push((format!("{}/{}", b.name(), v.label()), t));
                }
            }
        }
        out
    }

    /// Prints a summary of failed runs to stderr (no-op when everything
    /// passed).
    pub fn report_failures(&self) {
        if self.failures.is_empty() {
            return;
        }
        eprintln!("\n{} run(s) FAILED and were excluded:", self.failures.len());
        for (b, v, e) in &self.failures {
            eprintln!("  {} [{}]: {e}", b.name(), v.label());
        }
    }
}

/// Renders one paper-style figure as a table: one row per benchmark, one
/// column per series, plus an average row (arithmetic mean, as the paper
/// reports for its figures).
pub fn print_figure(
    title: &str,
    benchmarks: &[Benchmark],
    series: &[&str],
    mut value: impl FnMut(Benchmark, &str) -> f64,
    unit_fmt: impl Fn(f64) -> String,
) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len().min(100)));
    print!("{:<16}", "benchmark");
    for s in series {
        print!("{s:>12}");
    }
    println!();
    let mut sums = vec![0.0f64; series.len()];
    for &b in benchmarks {
        print!("{:<16}", b.name());
        for (k, s) in series.iter().enumerate() {
            let v = value(b, s);
            sums[k] += v;
            print!("{:>12}", unit_fmt(v));
        }
        println!();
    }
    if benchmarks.is_empty() {
        // No rows (every run of the figure failed): an average would be
        // 0/0 = NaN, so say so instead of printing a poisoned number.
        println!("{:<16}(no successful runs)", "average");
        return;
    }
    print!("{:<16}", "average");
    for (k, _) in series.iter().enumerate() {
        print!("{:>12}", unit_fmt(sums[k] / benchmarks.len() as f64));
    }
    println!();
}

/// Geometric mean (used for the headline speedup numbers).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Looks up `--flag VALUE` / `--flag=VALUE` in `args`; exits with a usage
/// error when the flag is present without a value.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if a == flag {
            match args.get(i + 1) {
                Some(v) => return Some(v.clone()),
                None => {
                    eprintln!("{flag} expects a value");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parses `--deadline-ms N` into a per-run [`RunBudget`]: every cell of
/// the sweep gets `N` milliseconds of wall clock before it stops with
/// `SimError::DeadlineExceeded` carrying partial stats (the run is
/// recorded as a failure; its siblings continue). Without the flag the
/// budget is inert.
pub fn budget_from_args() -> RunBudget {
    let args: Vec<String> = std::env::args().collect();
    let mut budget = RunBudget::none();
    if let Some(ms) = flag_value(&args, "--deadline-ms") {
        budget.deadline_ms = Some(ms.parse().unwrap_or_else(|_| {
            eprintln!("--deadline-ms expects a non-negative integer, got {ms:?}");
            std::process::exit(2);
        }));
    }
    budget
}

/// Tracing options shared by the figure binaries, parsed from the command
/// line:
///
/// - `--trace PATH` enables event tracing for every run of the sweep and
///   writes the collected traces to PATH when the sweep finishes. A
///   `.jsonl` extension selects line-delimited JSON for scripting;
///   anything else gets Chrome `trace_event` JSON, openable in
///   <https://ui.perfetto.dev>.
/// - `--trace-filter CATS` sets the category filter: comma-separated
///   category names (`launch,agt,warp,...`), `all`, or `default`. The
///   default keeps the launch path and scheduling structures and leaves
///   the high-volume per-issue warp/cache/DRAM categories off.
/// - `--metrics-interval N` samples the metrics time series (warp
///   activity, occupancy, AGT fill, DRAM efficiency) every N cycles;
///   default 1000, `0` disables sampling.
///
/// Without `--trace` the options are inert: the sweep runs with tracing
/// fully disabled and [`TraceOpts::write`] is a no-op. The struct also
/// carries the run budget from `--deadline-ms` ([`budget_from_args`]), so
/// [`TraceOpts::gpu_config`] gives every figure binary the wall-clock
/// knob for free.
#[derive(Clone, Debug, Default)]
pub struct TraceOpts {
    out: Option<PathBuf>,
    cfg: TraceConfig,
    budget: RunBudget,
}

impl TraceOpts {
    /// Parses the tracing flags from the command line.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let budget = budget_from_args();
        let out = flag_value(&args, "--trace").map(PathBuf::from);
        let mut cfg = TraceConfig::off();
        if out.is_none() {
            return TraceOpts { out, cfg, budget };
        }
        cfg.mask = Category::default_mask();
        cfg.metrics_interval = 1000;
        if let Some(spec) = flag_value(&args, "--trace-filter") {
            cfg.mask = Category::parse_mask(&spec).unwrap_or_else(|e| {
                eprintln!("--trace-filter: {e}");
                std::process::exit(2);
            });
        }
        if let Some(n) = flag_value(&args, "--metrics-interval") {
            cfg.metrics_interval = n.parse().unwrap_or_else(|_| {
                eprintln!("--metrics-interval expects a non-negative integer, got {n:?}");
                std::process::exit(2);
            });
        }
        TraceOpts { out, cfg, budget }
    }

    /// True when `--trace` was passed.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// The trace configuration these options selected (fully off without
    /// `--trace`).
    pub fn trace_config(&self) -> TraceConfig {
        self.cfg
    }

    /// The GPU configuration for the sweep: the stock K20c model with
    /// this run's trace settings applied.
    pub fn gpu_config(&self) -> GpuConfig {
        GpuConfig {
            trace: self.cfg,
            budget: self.budget.clone(),
            ..GpuConfig::k20c()
        }
    }

    /// Takes the traces of `benchmarks × variants` out of the finished
    /// matrix (input order) and writes the trace file named by `--trace`.
    /// No-op when tracing was not requested; exits non-zero when the file
    /// cannot be written.
    pub fn write(&self, m: &mut Matrix, benchmarks: &[Benchmark], variants: &[Variant]) {
        let Some(path) = &self.out else { return };
        let cells = m.take_traces(benchmarks, variants);
        let dropped: u64 = cells.iter().map(|(_, d)| d.dropped).sum();
        let text = if path.extension().is_some_and(|e| e == "jsonl") {
            gpu_trace::export::jsonl(&cells)
        } else {
            gpu_trace::export::chrome_trace(&cells)
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "trace: wrote {} cell(s) to {} ({} event(s) dropped past the retention limit)",
            cells.len(),
            path.display(),
            dropped,
        );
    }
}

/// Parses the common CLI convention of the figure binaries: `--test-scale`
/// switches to the fast Test inputs (useful for smoke runs).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Eval
    }
}

/// True when `--csv` was passed (figure binaries then also write
/// `out/figures/<name>.csv` for plotting).
pub fn csv_from_args() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// The scratch directory for generated experiment outputs (figure text,
/// CSV series, traces): `out/` at the working directory, created on
/// demand and gitignored — regenerated artifacts never land in the repo
/// root.
pub fn out_dir() -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::PathBuf::from("out");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes one figure as `out/figures/<name>.csv` (benchmark rows,
/// series columns).
pub fn write_csv(
    name: &str,
    benchmarks: &[Benchmark],
    series: &[&str],
    mut value: impl FnMut(Benchmark, &str) -> f64,
) -> std::io::Result<std::path::PathBuf> {
    let dir = out_dir()?.join("figures");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::from("benchmark");
    for s in series {
        out.push(',');
        out.push_str(s);
    }
    out.push('\n');
    for &b in benchmarks {
        out.push_str(b.name());
        for s in series {
            out.push_str(&format!(",{}", value(b, s)));
        }
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn write_csv_roundtrip() {
        let p = write_csv(
            "unit_test_fig",
            &[Benchmark::Amr, Benchmark::Bht],
            &["A", "B"],
            |b, s| {
                if b == Benchmark::Amr && s == "A" {
                    1.5
                } else {
                    2.0
                }
            },
        )
        .expect("csv written");
        let body = std::fs::read_to_string(p).expect("readable");
        assert!(body.starts_with("benchmark,A,B\n"));
        assert!(body.contains("amr,1.5,2"));
    }

    #[test]
    fn variant_cells_share_one_setup_per_benchmark() {
        let setups = vec![
            Arc::new(
                CellSetup::new(Benchmark::BfsUsaRoad, Scale::Test, GpuConfig::test_small())
                    .expect("setup builds"),
            ),
            Arc::new(
                CellSetup::new(Benchmark::JoinUniform, Scale::Test, GpuConfig::test_small())
                    .expect("setup builds"),
            ),
        ];
        let variants = [Variant::Flat, Variant::Cdp, Variant::Dtbl];
        let cells = matrix_cells(&setups, &variants);
        assert_eq!(cells.len(), 6);
        // The Flat/CDP/DTBL cells of one benchmark are the same setup —
        // one workload build, one decode — not three reconstructions.
        for w in cells.chunks(3) {
            assert!(Arc::ptr_eq(&w[0].0, &w[1].0));
            assert!(Arc::ptr_eq(&w[1].0, &w[2].0));
            assert!(w[0].0.data().ptr_eq(w[2].0.data()));
        }
        // And across benchmarks they are not.
        assert!(!Arc::ptr_eq(&cells[0].0, &cells[3].0));
    }

    #[test]
    fn server_matrix_caches_repeats_bit_identically() {
        let runner = SweepRunner::new(2).with_retries(1);
        let server = runner.server();
        let variants = [Variant::Flat, Variant::Dtbl];
        let m1 = runner.run_matrix_on(
            &server,
            &[Benchmark::BfsUsaRoad],
            &variants,
            Scale::Test,
            GpuConfig::test_small(),
        );
        assert!(m1.failures().is_empty());
        assert_eq!(server.cache_misses(), 2);
        assert_eq!(server.cache_hits(), 0);

        let m2 = runner.run_matrix_on(
            &server,
            &[Benchmark::BfsUsaRoad],
            &variants,
            Scale::Test,
            GpuConfig::test_small(),
        );
        assert!(m2.failures().is_empty());
        assert_eq!(server.cache_misses(), 2, "repeat batch never simulates");
        assert_eq!(server.cache_hits(), 2);
        for v in variants {
            assert_eq!(
                m1.get(Benchmark::BfsUsaRoad, v).stats,
                m2.get(Benchmark::BfsUsaRoad, v).stats,
                "cached result is bit-identical"
            );
        }
    }

    #[test]
    fn matrix_runs_and_validates() {
        let variants = [Variant::Flat, Variant::Dtbl];
        let m = Matrix::run(&[Benchmark::BfsUsaRoad], &variants, Scale::Test);
        assert!(m.contains(Benchmark::BfsUsaRoad, Variant::Flat));
        assert!(m.failures().is_empty());
        assert!(!m.contains(Benchmark::BfsUsaRoad, Variant::Cdp));
        assert_eq!(
            m.ok_benchmarks(&[Benchmark::BfsUsaRoad], &variants),
            vec![Benchmark::BfsUsaRoad]
        );
        assert!(m
            .ok_benchmarks(&[Benchmark::BfsUsaRoad], &[Variant::Cdp])
            .is_empty());
    }
}
