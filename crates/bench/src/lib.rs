//! Experiment harness for the DTBL reproduction.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation section (see the per-experiment index in
//! `DESIGN.md`); this library holds the shared matrix runner and the
//! plain-text "figure" renderer they use.

#![warn(missing_docs)]

use gpu_sim::SimError;
use std::collections::HashMap;
use std::io::Write as _;
use workloads::{Benchmark, RunReport, Scale, Variant};

/// Results of running benchmarks × variants.
#[derive(Debug, Default)]
pub struct Matrix {
    reports: HashMap<(Benchmark, Variant), RunReport>,
    failures: Vec<(Benchmark, Variant, SimError)>,
}

impl Matrix {
    /// Runs `benchmarks × variants` at `scale`. A run that fails — output
    /// diverging from the host reference, a hang, an exhausted hardware
    /// structure — is recorded in [`failures`](Matrix::failures) and the
    /// sweep continues, so one broken benchmark never costs the rest of
    /// an Eval-scale run. Progress is streamed to stderr since those
    /// sweeps take a few minutes.
    pub fn run(benchmarks: &[Benchmark], variants: &[Variant], scale: Scale) -> Self {
        let mut m = Matrix::default();
        for &b in benchmarks {
            for &v in variants {
                eprint!("  running {:14} {:7}... ", b.name(), v.label());
                std::io::stderr().flush().ok();
                let t = std::time::Instant::now();
                match b.run(v, scale) {
                    Ok(r) => {
                        eprintln!(
                            "{} cycles, {} launches, {:.1?}",
                            r.stats.cycles,
                            r.stats.dyn_launches(),
                            t.elapsed(),
                        );
                        m.reports.insert((b, v), r);
                    }
                    Err(e) => {
                        eprintln!("** FAILED: {e}");
                        m.failures.push((b, v, e));
                    }
                }
            }
        }
        m
    }

    /// A single run's report.
    ///
    /// # Panics
    ///
    /// Panics if the combination was not part of the matrix.
    pub fn get(&self, b: Benchmark, v: Variant) -> &RunReport {
        self.reports
            .get(&(b, v))
            .unwrap_or_else(|| panic!("no report for {b} [{v}]"))
    }

    /// Whether a combination was run successfully.
    pub fn contains(&self, b: Benchmark, v: Variant) -> bool {
        self.reports.contains_key(&(b, v))
    }

    /// Every run that failed, with its typed error.
    pub fn failures(&self) -> &[(Benchmark, Variant, SimError)] {
        &self.failures
    }

    /// The subset of `benchmarks` for which every variant in `variants`
    /// completed — the rows a figure can safely render.
    pub fn ok_benchmarks(&self, benchmarks: &[Benchmark], variants: &[Variant]) -> Vec<Benchmark> {
        benchmarks
            .iter()
            .copied()
            .filter(|&b| variants.iter().all(|&v| self.contains(b, v)))
            .collect()
    }

    /// Prints a summary of failed runs to stderr (no-op when everything
    /// passed).
    pub fn report_failures(&self) {
        if self.failures.is_empty() {
            return;
        }
        eprintln!("\n{} run(s) FAILED and were excluded:", self.failures.len());
        for (b, v, e) in &self.failures {
            eprintln!("  {} [{}]: {e}", b.name(), v.label());
        }
    }
}

/// Renders one paper-style figure as a table: one row per benchmark, one
/// column per series, plus an average row (arithmetic mean, as the paper
/// reports for its figures).
pub fn print_figure(
    title: &str,
    benchmarks: &[Benchmark],
    series: &[&str],
    mut value: impl FnMut(Benchmark, &str) -> f64,
    unit_fmt: impl Fn(f64) -> String,
) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len().min(100)));
    print!("{:<16}", "benchmark");
    for s in series {
        print!("{s:>12}");
    }
    println!();
    let mut sums = vec![0.0f64; series.len()];
    for &b in benchmarks {
        print!("{:<16}", b.name());
        for (k, s) in series.iter().enumerate() {
            let v = value(b, s);
            sums[k] += v;
            print!("{:>12}", unit_fmt(v));
        }
        println!();
    }
    print!("{:<16}", "average");
    for (k, _) in series.iter().enumerate() {
        print!("{:>12}", unit_fmt(sums[k] / benchmarks.len() as f64));
    }
    println!();
}

/// Geometric mean (used for the headline speedup numbers).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Parses the common CLI convention of the figure binaries: `--test-scale`
/// switches to the fast Test inputs (useful for smoke runs).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--test-scale") {
        Scale::Test
    } else {
        Scale::Eval
    }
}

/// True when `--csv` was passed (figure binaries then also write
/// `target/figures/<name>.csv` for plotting).
pub fn csv_from_args() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Writes one figure as `target/figures/<name>.csv` (benchmark rows,
/// series columns).
pub fn write_csv(
    name: &str,
    benchmarks: &[Benchmark],
    series: &[&str],
    mut value: impl FnMut(Benchmark, &str) -> f64,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::from("benchmark");
    for s in series {
        out.push(',');
        out.push_str(s);
    }
    out.push('\n');
    for &b in benchmarks {
        out.push_str(b.name());
        for s in series {
            out.push_str(&format!(",{}", value(b, s)));
        }
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn write_csv_roundtrip() {
        let p = write_csv(
            "unit_test_fig",
            &[Benchmark::Amr, Benchmark::Bht],
            &["A", "B"],
            |b, s| {
                if b == Benchmark::Amr && s == "A" {
                    1.5
                } else {
                    2.0
                }
            },
        )
        .expect("csv written");
        let body = std::fs::read_to_string(p).expect("readable");
        assert!(body.starts_with("benchmark,A,B\n"));
        assert!(body.contains("amr,1.5,2"));
    }

    #[test]
    fn matrix_runs_and_validates() {
        let variants = [Variant::Flat, Variant::Dtbl];
        let m = Matrix::run(&[Benchmark::BfsUsaRoad], &variants, Scale::Test);
        assert!(m.contains(Benchmark::BfsUsaRoad, Variant::Flat));
        assert!(m.failures().is_empty());
        assert!(!m.contains(Benchmark::BfsUsaRoad, Variant::Cdp));
        assert_eq!(
            m.ok_benchmarks(&[Benchmark::BfsUsaRoad], &variants),
            vec![Benchmark::BfsUsaRoad]
        );
        assert!(m
            .ok_benchmarks(&[Benchmark::BfsUsaRoad], &[Variant::Cdp])
            .is_empty());
    }
}
