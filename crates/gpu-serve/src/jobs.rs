//! The job table: every submitted cell gets a monotonically increasing
//! job id whose lifecycle (`queued → running → done`) connection threads
//! query with `poll` and block on with `wait`.

use gpu_sim::SimError;
use gpu_trace::TraceData;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use workloads::RunReport;

/// A job's current state.
#[derive(Clone, Debug)]
pub enum JobState {
    /// In the admission queue.
    Queued,
    /// Claimed by a warm-pool worker.
    Running,
    /// Finished; the report's trace (if recorded) is kept for the
    /// `trace` op and stripped from `poll`/`wait` responses. Boxed so
    /// the queued/running states don't pay for the report's footprint.
    Done(Box<Result<RunReport, SimError>>),
}

impl JobState {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    next: u64,
    states: HashMap<u64, JobState>,
}

/// Thread-safe job registry shared by connection threads and workers.
#[derive(Debug, Default)]
pub struct JobTable {
    inner: Mutex<Inner>,
    done: Condvar,
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Registers a new queued job and returns its id.
    pub fn create(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        inner.next += 1;
        let id = inner.next;
        inner.states.insert(id, JobState::Queued);
        id
    }

    /// Marks a job as claimed by a worker.
    pub fn set_running(&self, job: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(s) = inner.states.get_mut(&job) {
            *s = JobState::Running;
        }
    }

    /// Records a job's outcome and wakes every `wait`er.
    pub fn complete(&self, job: u64, result: Result<RunReport, SimError>) {
        let mut inner = self.inner.lock().unwrap();
        inner.states.insert(job, JobState::Done(Box::new(result)));
        drop(inner);
        self.done.notify_all();
    }

    /// Non-blocking state query; `None` for ids this daemon never issued.
    pub fn poll(&self, job: u64) -> Option<JobState> {
        self.inner.lock().unwrap().states.get(&job).cloned()
    }

    /// Blocks until the job completes or `timeout` expires. `Ok` carries
    /// the outcome; `Err(true)` means timeout, `Err(false)` unknown job.
    pub fn wait(&self, job: u64, timeout: Duration) -> Result<Result<RunReport, SimError>, bool> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().unwrap();
        loop {
            match inner.states.get(&job) {
                None => return Err(false),
                Some(JobState::Done(r)) => return Ok((**r).clone()),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(true);
            }
            let (guard, res) = self.done.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
            if res.timed_out() {
                match inner.states.get(&job) {
                    Some(JobState::Done(r)) => return Ok((**r).clone()),
                    None => return Err(false),
                    Some(_) => return Err(true),
                }
            }
        }
    }

    /// Takes (and clears) the recorded trace of a finished job, so the
    /// potentially large event buffer crosses the wire at most once.
    pub fn take_trace(&self, job: u64) -> Result<Option<TraceData>, JobTraceError> {
        let mut inner = self.inner.lock().unwrap();
        match inner.states.get_mut(&job) {
            None => Err(JobTraceError::UnknownJob),
            Some(JobState::Done(res)) => match &mut **res {
                Ok(report) => Ok(report.trace.take()),
                Err(_) => Ok(None),
            },
            Some(_) => Err(JobTraceError::NotDone),
        }
    }

    /// Number of jobs ever created (the next id handed out minus one).
    pub fn created(&self) -> u64 {
        self.inner.lock().unwrap().next
    }
}

/// Why a trace request could not be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobTraceError {
    /// The id was never issued by this daemon.
    UnknownJob,
    /// The job has not finished yet.
    NotDone,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Stats;
    use workloads::Variant;

    fn report() -> RunReport {
        RunReport {
            benchmark: "amr".into(),
            variant: Variant::Flat,
            stats: Stats::default(),
            trace: None,
        }
    }

    #[test]
    fn lifecycle_and_poll() {
        let t = JobTable::new();
        let id = t.create();
        assert_eq!(t.poll(id).unwrap().name(), "queued");
        t.set_running(id);
        assert_eq!(t.poll(id).unwrap().name(), "running");
        t.complete(id, Ok(report()));
        assert_eq!(t.poll(id).unwrap().name(), "done");
        assert!(t.poll(id + 1).is_none());
    }

    #[test]
    fn wait_times_out_then_succeeds() {
        let t = std::sync::Arc::new(JobTable::new());
        let id = t.create();
        assert!(matches!(t.wait(id, Duration::from_millis(10)), Err(true)));
        assert!(matches!(t.wait(9999, Duration::from_millis(1)), Err(false)));
        let t2 = std::sync::Arc::clone(&t);
        let h = std::thread::spawn(move || t2.wait(id, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        t.complete(id, Ok(report()));
        assert!(h.join().unwrap().unwrap().is_ok());
    }

    #[test]
    fn trace_is_taken_at_most_once() {
        let t = JobTable::new();
        let id = t.create();
        assert!(matches!(t.take_trace(id), Err(JobTraceError::NotDone)));
        let mut r = report();
        r.trace = Some(TraceData::default());
        t.complete(id, Ok(r));
        assert!(t.take_trace(id).unwrap().is_some());
        assert!(t.take_trace(id).unwrap().is_none(), "second take is empty");
        assert!(matches!(t.take_trace(77), Err(JobTraceError::UnknownJob)));
    }
}
