//! The newline-delimited JSON wire format: request parsing, response
//! framing, and the exact codecs between simulator types and
//! [`Json`] values.
//!
//! One request or response per line, each a single JSON object. The
//! codecs are lossless for every integer counter below 2^53 (the
//! [`Json::Num`] exactness bound), which covers every [`Stats`] field by
//! orders of magnitude — so a client-side decode is bit-identical to the
//! in-process struct, pinned by the round-trip tests here and the
//! `daemon_smoke` gate.
//!
//! ## Message grammar
//!
//! Requests carry an `"op"` discriminator:
//!
//! | op         | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `submit`   | `benchmark`, `variant`, `scale`, `client`, `weight?`, `config?`, `max_cycles?`, `cycle_cap?`, `trace?` |
//! | `poll`     | `job`                                                         |
//! | `wait`     | `job`, `timeout_ms?`                                          |
//! | `trace`    | `job`                                                         |
//! | `metrics`  | —                                                             |
//! | `ping`     | —                                                             |
//! | `shutdown` | —                                                             |
//!
//! Responses are `{"ok":true, ...}` on success or an error frame
//! `{"ok":false,"error":{"kind":K,"message":M}}` with `kind` one of
//! `bad_request`, `unknown_job`, `timeout`, `overloaded`, `sim`,
//! `version_mismatch`, `shutting_down`.
//!
//! ## Versioning
//!
//! The daemon greets every connection with a hello frame
//! `{"hello":"gpu-serve","proto":N,"jobs":J}`; clients refuse a `proto`
//! they do not speak. [`PROTO_VERSION`] bumps on any breaking grammar or
//! codec change.

use gpu_mem::{CacheStats, DramStats, MemStats};
use gpu_sim::{DynLaunchKind, GpuConfig, LaunchRecord, SimError, Stats};
use gpu_trace::json::Json;
use gpu_trace::MetricsRegistry;
use workloads::{Benchmark, RunReport, Scale, Variant};

/// Wire protocol version advertised in the hello frame.
pub const PROTO_VERSION: u64 = 1;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Enqueue one cell; responds with a job id.
    Submit(SubmitSpec),
    /// Non-blocking job status query.
    Poll {
        /// Job id from `submit`.
        job: u64,
    },
    /// Block until the job finishes or the timeout expires.
    Wait {
        /// Job id from `submit`.
        job: u64,
        /// Wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Stream the finished job's JSONL trace events.
    Trace {
        /// Job id from `submit`.
        job: u64,
    },
    /// Snapshot of the merged metrics registry.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Stop the daemon (persisting the cache first).
    Shutdown,
}

/// Base simulator configuration preset a submission runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigPreset {
    /// The paper's Tesla K20c model (`GpuConfig::k20c`), the default.
    K20c,
    /// The reduced CI machine (`GpuConfig::test_small`).
    TestSmall,
}

impl ConfigPreset {
    /// Wire name (`k20c` / `test_small`).
    pub fn name(self) -> &'static str {
        match self {
            ConfigPreset::K20c => "k20c",
            ConfigPreset::TestSmall => "test_small",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<ConfigPreset> {
        match name {
            "k20c" => Some(ConfigPreset::K20c),
            "test_small" => Some(ConfigPreset::TestSmall),
            _ => None,
        }
    }

    /// The preset's base configuration.
    pub fn config(self) -> GpuConfig {
        match self {
            ConfigPreset::K20c => GpuConfig::k20c(),
            ConfigPreset::TestSmall => GpuConfig::test_small(),
        }
    }
}

/// One cell submission: which cell to run and under which knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitSpec {
    /// Benchmark, by its paper name (e.g. `bfs_usa_road`).
    pub benchmark: Benchmark,
    /// Launch-mode variant, by its figure label (e.g. `DTBL`).
    pub variant: Variant,
    /// Problem scale.
    pub scale: Scale,
    /// Client identity the fair admission queue interleaves over.
    pub client: String,
    /// Fair-share weight of this client (consecutive pops per round-robin
    /// turn); the latest submitted weight wins.
    pub weight: u64,
    /// Base configuration preset.
    pub preset: ConfigPreset,
    /// Override for `GpuConfig::max_cycles` (deterministic cut-short).
    pub max_cycles: Option<u64>,
    /// Deterministic cycle budget (`RunBudget::cycle_cap`).
    pub cycle_cap: Option<u64>,
    /// Record an event trace for this run (streamable via the `trace` op).
    pub trace: bool,
}

impl SubmitSpec {
    /// The fully-resolved base config this submission runs under. Only
    /// *deterministic* knobs are reachable over the wire — there is no
    /// `deadline_ms` field by design, so every daemon outcome is a pure
    /// function of the cell and safe for the cache to memoize.
    pub fn gpu_config(&self) -> GpuConfig {
        let mut cfg = self.preset.config();
        if let Some(mc) = self.max_cycles {
            cfg.max_cycles = mc;
        }
        cfg.budget.cycle_cap = self.cycle_cap;
        if self.trace {
            cfg.trace = gpu_trace::TraceConfig::all();
        }
        cfg
    }
}

/// Parses one request line (already stripped of its newline).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing `op` field")?;
    match op {
        "submit" => {
            let benchmark = req_str(&v, "benchmark")?;
            let benchmark = Benchmark::from_name(benchmark)
                .ok_or_else(|| format!("unknown benchmark `{benchmark}`"))?;
            let variant = req_str(&v, "variant")?;
            let variant = Variant::from_label(variant)
                .ok_or_else(|| format!("unknown variant `{variant}`"))?;
            let scale = req_str(&v, "scale")?;
            let scale =
                Scale::from_name(scale).ok_or_else(|| format!("unknown scale `{scale}`"))?;
            let preset = match v.get("config").and_then(Json::as_str) {
                None => ConfigPreset::K20c,
                Some(name) => ConfigPreset::from_name(name)
                    .ok_or_else(|| format!("unknown config preset `{name}`"))?,
            };
            Ok(Request::Submit(SubmitSpec {
                benchmark,
                variant,
                scale,
                client: req_str(&v, "client")?.to_string(),
                weight: opt_u64(&v, "weight")?.unwrap_or(1).max(1),
                preset,
                max_cycles: opt_u64(&v, "max_cycles")?,
                cycle_cap: opt_u64(&v, "cycle_cap")?,
                trace: matches!(v.get("trace"), Some(Json::Bool(true))),
            }))
        }
        "poll" => Ok(Request::Poll {
            job: req_u64(&v, "job")?,
        }),
        "wait" => Ok(Request::Wait {
            job: req_u64(&v, "job")?,
            timeout_ms: opt_u64(&v, "timeout_ms")?.unwrap_or(30_000),
        }),
        "trace" => Ok(Request::Trace {
            job: req_u64(&v, "job")?,
        }),
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Serializes a submit spec back to its request line (client side).
pub fn submit_to_json(spec: &SubmitSpec) -> Json {
    let mut pairs = vec![
        ("op".into(), Json::Str("submit".into())),
        ("benchmark".into(), Json::Str(spec.benchmark.name().into())),
        ("variant".into(), Json::Str(spec.variant.label().into())),
        ("scale".into(), Json::Str(spec.scale.name().into())),
        ("client".into(), Json::Str(spec.client.clone())),
        ("weight".into(), Json::Num(spec.weight as f64)),
        ("config".into(), Json::Str(spec.preset.name().into())),
    ];
    if let Some(mc) = spec.max_cycles {
        pairs.push(("max_cycles".into(), Json::Num(mc as f64)));
    }
    if let Some(cap) = spec.cycle_cap {
        pairs.push(("cycle_cap".into(), Json::Num(cap as f64)));
    }
    if spec.trace {
        pairs.push(("trace".into(), Json::Bool(true)));
    }
    Json::Obj(pairs)
}

/// Error-frame kinds a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed or semantically invalid request.
    BadRequest,
    /// The job id is not known to this daemon.
    UnknownJob,
    /// A `wait` bound expired before the job finished.
    Timeout,
    /// The accept queue or connection cap is full; retry later.
    Overloaded,
    /// The simulation itself failed; details in the `sim` object.
    Sim,
    /// The client spoke an incompatible protocol version.
    VersionMismatch,
    /// The daemon is stopping and no longer accepts work.
    ShuttingDown,
}

impl ErrorKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownJob => "unknown_job",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Sim => "sim",
            ErrorKind::VersionMismatch => "version_mismatch",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }
}

/// Builds an error frame.
pub fn error_frame(kind: ErrorKind, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(kind.name().into())),
                ("message".into(), Json::Str(message.into())),
            ]),
        ),
    ])
}

/// Builds the error frame for a failed simulation, carrying the typed
/// error's wire rendering under `"sim"`.
pub fn sim_error_frame(e: &SimError) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::Str(ErrorKind::Sim.name().into())),
                ("message".into(), Json::Str(e.to_string())),
            ]),
        ),
        ("sim".into(), sim_error_to_json(e)),
    ])
}

/// Builds a success frame from `(key, value)` payload fields.
pub fn ok_frame(fields: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    pairs.extend(fields);
    Json::Obj(pairs)
}

/// The hello frame greeting every new connection.
pub fn hello_frame(jobs: usize) -> Json {
    Json::Obj(vec![
        ("hello".into(), Json::Str("gpu-serve".into())),
        ("proto".into(), Json::Num(PROTO_VERSION as f64)),
        ("jobs".into(), Json::Num(jobs as f64)),
    ])
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(field) => field
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn obj_u64(v: &Json, key: &str) -> Result<u64, String> {
    req_u64(v, key)
}

fn obj_u32(v: &Json, key: &str) -> Result<u32, String> {
    let n = req_u64(v, key)?;
    u32::try_from(n).map_err(|_| format!("field `{key}` exceeds u32"))
}

// ---------------------------------------------------------------------
// Stats / report codecs
// ---------------------------------------------------------------------

fn cache_stats_to_json(s: &CacheStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), num(s.hits)),
        ("misses".into(), num(s.misses)),
        ("writebacks".into(), num(s.writebacks)),
    ])
}

fn cache_stats_from_json(v: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        hits: obj_u64(v, "hits")?,
        misses: obj_u64(v, "misses")?,
        writebacks: obj_u64(v, "writebacks")?,
    })
}

fn dram_stats_to_json(s: &DramStats) -> Json {
    Json::Obj(vec![
        ("n_rd".into(), num(s.n_rd)),
        ("n_wr".into(), num(s.n_wr)),
        ("active_cycles".into(), num(s.active_cycles)),
        ("row_hits".into(), num(s.row_hits)),
        ("row_misses".into(), num(s.row_misses)),
    ])
}

fn dram_stats_from_json(v: &Json) -> Result<DramStats, String> {
    Ok(DramStats {
        n_rd: obj_u64(v, "n_rd")?,
        n_wr: obj_u64(v, "n_wr")?,
        active_cycles: obj_u64(v, "active_cycles")?,
        row_hits: obj_u64(v, "row_hits")?,
        row_misses: obj_u64(v, "row_misses")?,
    })
}

fn mem_stats_to_json(s: &MemStats) -> Json {
    Json::Obj(vec![
        ("loads".into(), num(s.loads)),
        ("stores".into(), num(s.stores)),
        ("atomics".into(), num(s.atomics)),
        ("l1".into(), cache_stats_to_json(&s.l1)),
        ("l2".into(), cache_stats_to_json(&s.l2)),
        ("dram".into(), dram_stats_to_json(&s.dram)),
    ])
}

fn mem_stats_from_json(v: &Json) -> Result<MemStats, String> {
    Ok(MemStats {
        loads: obj_u64(v, "loads")?,
        stores: obj_u64(v, "stores")?,
        atomics: obj_u64(v, "atomics")?,
        l1: cache_stats_from_json(v.get("l1").ok_or("missing `l1`")?)?,
        l2: cache_stats_from_json(v.get("l2").ok_or("missing `l2`")?)?,
        dram: dram_stats_from_json(v.get("dram").ok_or("missing `dram`")?)?,
    })
}

fn launch_kind_name(k: DynLaunchKind) -> &'static str {
    match k {
        DynLaunchKind::DeviceKernel => "device_kernel",
        DynLaunchKind::AggGroup => "agg_group",
        DynLaunchKind::AggFallback => "agg_fallback",
        DynLaunchKind::HostSerialized => "host_serialized",
    }
}

fn launch_kind_from_name(name: &str) -> Result<DynLaunchKind, String> {
    match name {
        "device_kernel" => Ok(DynLaunchKind::DeviceKernel),
        "agg_group" => Ok(DynLaunchKind::AggGroup),
        "agg_fallback" => Ok(DynLaunchKind::AggFallback),
        "host_serialized" => Ok(DynLaunchKind::HostSerialized),
        other => Err(format!("unknown launch kind `{other}`")),
    }
}

fn launch_to_json(l: &LaunchRecord) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::Str(launch_kind_name(l.kind).into())),
        ("launched_at".into(), num(l.launched_at)),
        ("first_tb_at".into(), l.first_tb_at.map_or(Json::Null, num)),
        ("ntb".into(), num(u64::from(l.ntb))),
        ("threads_per_tb".into(), num(u64::from(l.threads_per_tb))),
        ("reserved_bytes".into(), num(l.reserved_bytes)),
    ])
}

fn launch_from_json(v: &Json) -> Result<LaunchRecord, String> {
    Ok(LaunchRecord {
        kind: launch_kind_from_name(req_str(v, "kind")?)?,
        launched_at: obj_u64(v, "launched_at")?,
        first_tb_at: opt_u64(v, "first_tb_at")?,
        ntb: obj_u32(v, "ntb")?,
        threads_per_tb: obj_u32(v, "threads_per_tb")?,
        reserved_bytes: obj_u64(v, "reserved_bytes")?,
    })
}

/// Serializes the full [`Stats`] struct. Every field is an integer, so
/// the encoding is exact (see the module docs).
pub fn stats_to_json(s: &Stats) -> Json {
    Json::Obj(vec![
        ("cycles".into(), num(s.cycles)),
        ("warp_issues".into(), num(s.warp_issues)),
        ("active_lanes".into(), num(s.active_lanes)),
        ("resident_warp_cycles".into(), num(s.resident_warp_cycles)),
        ("busy_cycles".into(), num(s.busy_cycles)),
        ("tb_completed".into(), num(s.tb_completed)),
        ("host_launches".into(), num(s.host_launches)),
        (
            "launches".into(),
            Json::Arr(s.launches.iter().map(launch_to_json).collect()),
        ),
        ("peak_pending_bytes".into(), num(s.peak_pending_bytes)),
        ("pending_bytes".into(), num(s.pending_bytes)),
        ("agg_coalesced".into(), num(s.agg_coalesced)),
        ("agg_fallbacks".into(), num(s.agg_fallbacks)),
        ("agt_overflows".into(), num(s.agt_overflows)),
        ("mem".into(), mem_stats_to_json(&s.mem)),
        ("barrier_waits".into(), num(s.barrier_waits)),
        ("forced_agt_overflows".into(), num(s.forced_agt_overflows)),
        ("forced_mem_delays".into(), num(s.forced_mem_delays)),
        ("hwq_full_rejections".into(), num(s.hwq_full_rejections)),
        (
            "kmu_saturation_rejections".into(),
            num(s.kmu_saturation_rejections),
        ),
        (
            "agt_overflow_exhausted".into(),
            num(s.agt_overflow_exhausted),
        ),
        ("heap_cap_denials".into(), num(s.heap_cap_denials)),
        (
            "degraded_to_device_kernel".into(),
            num(s.degraded_to_device_kernel),
        ),
        (
            "degraded_to_host_serial".into(),
            num(s.degraded_to_host_serial),
        ),
        ("launch_backoffs".into(), num(s.launch_backoffs)),
        (
            "host_launches_deferred".into(),
            num(s.host_launches_deferred),
        ),
        (
            "max_warps_per_smx".into(),
            num(u64::from(s.max_warps_per_smx)),
        ),
        ("num_smx".into(), num(u64::from(s.num_smx))),
    ])
}

/// Decodes [`stats_to_json`]'s encoding. Every field is required —
/// a frame from a different schema fails loudly instead of zero-filling.
pub fn stats_from_json(v: &Json) -> Result<Stats, String> {
    let launches = v
        .get("launches")
        .and_then(Json::as_arr)
        .ok_or("missing `launches` array")?
        .iter()
        .map(launch_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Stats {
        cycles: obj_u64(v, "cycles")?,
        warp_issues: obj_u64(v, "warp_issues")?,
        active_lanes: obj_u64(v, "active_lanes")?,
        resident_warp_cycles: obj_u64(v, "resident_warp_cycles")?,
        busy_cycles: obj_u64(v, "busy_cycles")?,
        tb_completed: obj_u64(v, "tb_completed")?,
        host_launches: obj_u64(v, "host_launches")?,
        launches,
        peak_pending_bytes: obj_u64(v, "peak_pending_bytes")?,
        pending_bytes: obj_u64(v, "pending_bytes")?,
        agg_coalesced: obj_u64(v, "agg_coalesced")?,
        agg_fallbacks: obj_u64(v, "agg_fallbacks")?,
        agt_overflows: obj_u64(v, "agt_overflows")?,
        mem: mem_stats_from_json(v.get("mem").ok_or("missing `mem`")?)?,
        barrier_waits: obj_u64(v, "barrier_waits")?,
        forced_agt_overflows: obj_u64(v, "forced_agt_overflows")?,
        forced_mem_delays: obj_u64(v, "forced_mem_delays")?,
        hwq_full_rejections: obj_u64(v, "hwq_full_rejections")?,
        kmu_saturation_rejections: obj_u64(v, "kmu_saturation_rejections")?,
        agt_overflow_exhausted: obj_u64(v, "agt_overflow_exhausted")?,
        heap_cap_denials: obj_u64(v, "heap_cap_denials")?,
        degraded_to_device_kernel: obj_u64(v, "degraded_to_device_kernel")?,
        degraded_to_host_serial: obj_u64(v, "degraded_to_host_serial")?,
        launch_backoffs: obj_u64(v, "launch_backoffs")?,
        host_launches_deferred: obj_u64(v, "host_launches_deferred")?,
        max_warps_per_smx: obj_u32(v, "max_warps_per_smx")?,
        num_smx: obj_u32(v, "num_smx")?,
    })
}

/// Serializes a report for `poll`/`wait` responses and the persistence
/// layer. The event trace travels separately (the `trace` op) and is
/// never part of this encoding.
pub fn report_to_json(r: &RunReport) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::Str(r.benchmark.clone())),
        ("variant".into(), Json::Str(r.variant.label().into())),
        ("stats".into(), stats_to_json(&r.stats)),
    ])
}

/// Decodes [`report_to_json`]'s encoding (`trace` is always `None`).
pub fn report_from_json(v: &Json) -> Result<RunReport, String> {
    let variant = req_str(v, "variant")?;
    Ok(RunReport {
        benchmark: req_str(v, "benchmark")?.to_string(),
        variant: Variant::from_label(variant)
            .ok_or_else(|| format!("unknown variant `{variant}`"))?,
        stats: stats_from_json(v.get("stats").ok_or("missing `stats`")?)?,
        trace: None,
    })
}

/// One-way rendering of a typed simulation error for error frames:
/// a stable `code` plus the salient numeric context. Clients treat this
/// as diagnostics — the full Rust value does not cross the wire.
pub fn sim_error_to_json(e: &SimError) -> Json {
    let (code, mut fields): (&str, Vec<(String, Json)>) = match e {
        SimError::CycleLimit { cycles } => ("cycle_limit", vec![("cycles".into(), num(*cycles))]),
        SimError::DeadlineExceeded { budget, cycle, .. } => (
            "deadline_exceeded",
            vec![
                ("budget".into(), Json::Str(budget.name().into())),
                ("cycle".into(), num(*cycle)),
            ],
        ),
        SimError::Cancelled { cycle, .. } => ("cancelled", vec![("cycle".into(), num(*cycle))]),
        SimError::OutOfMemory { bytes } => (
            "out_of_memory",
            vec![("bytes".into(), num(u64::from(*bytes)))],
        ),
        SimError::UnknownKernel(_) => ("unknown_kernel", vec![]),
        SimError::BarrierDeadlock { report } => (
            "barrier_deadlock",
            vec![("cycle".into(), num(report.cycle))],
        ),
        SimError::Hang { report } => ("hang", vec![("cycle".into(), num(report.cycle))]),
        SimError::HwqFull { stream, depth } => (
            "hwq_full",
            vec![
                ("stream".into(), num(u64::from(*stream))),
                ("depth".into(), num(*depth as u64)),
            ],
        ),
        SimError::KmuSaturated { pending } => (
            "kmu_saturated",
            vec![("pending".into(), num(*pending as u64))],
        ),
        SimError::AgtExhausted {
            cycle,
            live_overflow,
        } => (
            "agt_exhausted",
            vec![
                ("cycle".into(), num(*cycle)),
                ("live_overflow".into(), num(*live_overflow as u64)),
            ],
        ),
        SimError::SharedMemFault { smx, tb_slot, .. } => (
            "shared_mem_fault",
            vec![
                ("smx".into(), num(*smx as u64)),
                ("tb_slot".into(), num(*tb_slot as u64)),
            ],
        ),
        SimError::KernelBuild { .. } => ("kernel_build", vec![]),
        SimError::InvariantViolation { cycle, .. } => {
            ("invariant_violation", vec![("cycle".into(), num(*cycle))])
        }
        SimError::CellCrashed { attempts, .. } => (
            "cell_crashed",
            vec![("attempts".into(), num(u64::from(*attempts)))],
        ),
        SimError::ValidationFailed { app, .. } => (
            "validation_failed",
            vec![("app".into(), Json::Str(app.clone()))],
        ),
    };
    let mut pairs = vec![("code".to_string(), Json::Str(code.into()))];
    pairs.append(&mut fields);
    pairs.push(("message".into(), Json::Str(e.to_string())));
    Json::Obj(pairs)
}

/// Serializes one or more metrics registries into a single snapshot
/// object: `counters` and `gauges` maps plus per-histogram
/// `{count, mean, p50, p95, p99}` summaries. Later registries win on
/// name collisions.
pub fn metrics_to_json(regs: &[&MetricsRegistry]) -> Json {
    let mut counters: Vec<(String, Json)> = Vec::new();
    let mut gauges: Vec<(String, Json)> = Vec::new();
    let mut hists: Vec<(String, Json)> = Vec::new();
    let upsert = |list: &mut Vec<(String, Json)>, key: String, value: Json| {
        if let Some(slot) = list.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            list.push((key, value));
        }
    };
    for reg in regs {
        for (name, v) in reg.counters() {
            upsert(&mut counters, name.to_string(), num(v));
        }
        for (name, v) in reg.gauges() {
            upsert(&mut gauges, name.to_string(), Json::Num(v));
        }
        for (name, h) in reg.histograms() {
            upsert(
                &mut hists,
                name.to_string(),
                Json::Obj(vec![
                    ("count".into(), num(h.count())),
                    ("mean".into(), Json::Num(h.mean())),
                    ("p50".into(), h.p50().map_or(Json::Null, num)),
                    ("p95".into(), h.p95().map_or(Json::Null, num)),
                    ("p99".into(), h.p99().map_or(Json::Null, num)),
                ]),
            );
        }
    }
    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(hists)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_stats() -> Stats {
        Stats {
            cycles: 123_456,
            warp_issues: 999,
            active_lanes: 31_000,
            launches: vec![
                LaunchRecord {
                    kind: DynLaunchKind::AggGroup,
                    launched_at: 10,
                    first_tb_at: Some(60),
                    ntb: 3,
                    threads_per_tb: 96,
                    reserved_bytes: 1024,
                },
                LaunchRecord {
                    kind: DynLaunchKind::HostSerialized,
                    launched_at: 99,
                    first_tb_at: None,
                    ntb: 1,
                    threads_per_tb: 32,
                    reserved_bytes: 0,
                },
            ],
            mem: MemStats {
                loads: 7,
                stores: 8,
                atomics: 9,
                l1: CacheStats {
                    hits: 1,
                    misses: 2,
                    writebacks: 3,
                },
                l2: CacheStats {
                    hits: 4,
                    misses: 5,
                    writebacks: 6,
                },
                dram: DramStats {
                    n_rd: 11,
                    n_wr: 12,
                    active_cycles: 13,
                    row_hits: 14,
                    row_misses: 15,
                },
            },
            max_warps_per_smx: 64,
            num_smx: 13,
            ..Stats::default()
        }
    }

    #[test]
    fn stats_round_trip_is_bit_identical() {
        let s = busy_stats();
        let text = stats_to_json(&s).to_string();
        let back = stats_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn stats_decode_rejects_missing_fields() {
        let mut v = stats_to_json(&busy_stats());
        if let Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "agg_coalesced");
        }
        let err = stats_from_json(&v).unwrap_err();
        assert!(err.contains("agg_coalesced"), "{err}");
    }

    #[test]
    fn report_round_trip() {
        let r = RunReport {
            benchmark: "bfs_usa_road".into(),
            variant: Variant::DtblNoCoalesce,
            stats: busy_stats(),
            trace: None,
        };
        let back = report_from_json(&report_to_json(&r)).unwrap();
        assert_eq!(back.benchmark, r.benchmark);
        assert_eq!(back.variant, r.variant);
        assert_eq!(back.stats, r.stats);
    }

    #[test]
    fn submit_round_trip_and_config() {
        let spec = SubmitSpec {
            benchmark: Benchmark::JoinGaussian,
            variant: Variant::Dtbl,
            scale: Scale::Test,
            client: "c1".into(),
            weight: 3,
            preset: ConfigPreset::TestSmall,
            max_cycles: Some(500_000),
            cycle_cap: Some(1_000),
            trace: true,
        };
        let line = submit_to_json(&spec).to_string();
        match parse_request(&line).unwrap() {
            Request::Submit(back) => assert_eq!(back, spec),
            other => panic!("{other:?}"),
        }
        let cfg = spec.gpu_config();
        assert_eq!(cfg.max_cycles, 500_000);
        assert_eq!(cfg.budget.cycle_cap, Some(1_000));
        assert!(cfg.trace.enabled());
        // The wire never carries host-dependent budget knobs.
        assert_eq!(cfg.budget.deadline_ms, None);
        assert!(cfg.budget.cancel.is_none());
    }

    #[test]
    fn parse_rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(parse_request("{\"op\":\"poll\"}").is_err(), "missing job");
        let e = parse_request(
            "{\"op\":\"submit\",\"benchmark\":\"nope\",\"variant\":\"Flat\",\
             \"scale\":\"test\",\"client\":\"c\"}",
        )
        .unwrap_err();
        assert!(e.contains("unknown benchmark"), "{e}");
    }

    #[test]
    fn wait_defaults_its_timeout() {
        match parse_request("{\"op\":\"wait\",\"job\":7}").unwrap() {
            Request::Wait { job, timeout_ms } => {
                assert_eq!(job, 7);
                assert_eq!(timeout_ms, 30_000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_frames_name_their_kind() {
        let f = error_frame(ErrorKind::UnknownJob, "job 9");
        assert_eq!(f.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            f.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("unknown_job")
        );
        let sim = sim_error_frame(&SimError::CycleLimit { cycles: 10 });
        assert_eq!(
            sim.get("sim")
                .and_then(|s| s.get("code"))
                .and_then(Json::as_str),
            Some("cycle_limit")
        );
    }

    #[test]
    fn metrics_snapshot_merges_registries() {
        let mut a = MetricsRegistry::new();
        a.inc("server.cache_hits", 5);
        a.set_gauge("server.cached_results", 2.0);
        let mut b = MetricsRegistry::new();
        b.observe("admission.wait_us", 100);
        b.observe("admission.wait_us", 300);
        let v = metrics_to_json(&[&a, &b]);
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("server.cache_hits"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("server.cached_results"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        let h = v
            .get("histograms")
            .and_then(|h| h.get("admission.wait_us"))
            .expect("histogram summary");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(h.get("p50").and_then(Json::as_u64), Some(300));
    }
}
