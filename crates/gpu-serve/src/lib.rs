//! `gpu-serve`: a dependency-free network daemon for DTBL sweep cells.
//!
//! A long-lived process fronts the crate-spanning warm pool
//! ([`gpu_sim::BatchServer`]) over TCP, speaking newline-delimited JSON
//! built on the in-repo [`gpu_trace::json`] value type — no serde, no
//! tokio, no HTTP stack. Clients `submit` cells (benchmark × variant ×
//! scale × config), `poll`/`wait` on job ids, stream recorded traces,
//! and read a metrics snapshot; repeated cells are served from a
//! size-bounded LRU result cache that survives restarts via a versioned
//! JSONL file.
//!
//! The pieces:
//!
//! - [`wire`] — message grammar, error frames, and exact JSON codecs
//!   for [`gpu_sim::Stats`] (bit-identical round-trips);
//! - [`admission`] — the fair (weighted round-robin over clients)
//!   submission queue between connections and workers;
//! - [`jobs`] — the job table `poll`/`wait` consult;
//! - [`persist`] — atomic, versioned cache persistence that degrades
//!   to a cold cache on any corruption;
//! - [`daemon`] — accept loop, connection threads, workers, shutdown;
//! - [`client`] — the blocking client library the `gpu-serve-client`
//!   binary and the `daemon_smoke` harness use.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod daemon;
pub mod jobs;
pub mod persist;
pub mod wire;

pub use client::{Client, ClientError, JobStatus};
pub use daemon::{serve, DaemonHandle, ServeConfig};
pub use wire::{ConfigPreset, SubmitSpec, PROTO_VERSION};

#[cfg(test)]
mod loopback_tests {
    use super::*;
    use gpu_trace::json::Json;
    use std::time::Duration;
    use workloads::{Benchmark, Scale, Variant};

    fn spec(benchmark: Benchmark, variant: Variant, client: &str) -> SubmitSpec {
        SubmitSpec {
            benchmark,
            variant,
            scale: Scale::Test,
            client: client.to_string(),
            weight: 1,
            preset: ConfigPreset::TestSmall,
            max_cycles: None,
            cycle_cap: None,
            trace: false,
        }
    }

    #[test]
    fn submit_wait_metrics_and_cache_hits_over_loopback() {
        let handle = serve(ServeConfig {
            jobs: 2,
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr).expect("connect");
        client.ping().expect("ping");

        // Same cell twice: the second must be a cache hit with an
        // identical report.
        let a = client
            .submit(&spec(Benchmark::Amr, Variant::Flat, "t"))
            .unwrap();
        let first = client.wait(a, Duration::from_secs(120)).expect("first run");
        let b = client
            .submit(&spec(Benchmark::Amr, Variant::Flat, "t"))
            .unwrap();
        let second = client
            .wait(b, Duration::from_secs(120))
            .expect("cached run");
        assert_eq!(first.stats, second.stats, "cache hit must be bit-identical");

        let snapshot = client.metrics().expect("metrics");
        assert!(
            client::snapshot_counter(&snapshot, "server.cache_hits") >= 1,
            "duplicate submission should hit the cache: {snapshot}"
        );
        assert_eq!(
            client::snapshot_counter(&snapshot, "daemon.jobs_completed"),
            2
        );

        // Unknown job and malformed requests answer with typed frames,
        // not dropped connections.
        match client.poll(9999) {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "unknown_job"),
            other => panic!("expected unknown_job, got {other:?}"),
        }
        client.ping().expect("connection survives an error frame");

        client.shutdown().expect("shutdown");
        handle.wait();
    }

    #[test]
    fn traced_job_streams_its_events() {
        let handle = serve(ServeConfig {
            jobs: 1,
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr).expect("connect");
        let mut s = spec(Benchmark::Amr, Variant::Dtbl, "tracer");
        s.trace = true;
        let job = client.submit(&s).unwrap();
        client.wait(job, Duration::from_secs(120)).expect("run");
        let trace = client.trace(job).expect("trace stream");
        let data = trace.expect("traced run has events");
        assert!(!data.events.is_empty(), "DTBL amr should emit events");
        // The trace is taken exactly once.
        assert!(client.trace(job).expect("second trace").is_none());
        client.shutdown().unwrap();
        handle.wait();
    }

    #[test]
    fn sim_failures_arrive_as_typed_error_frames() {
        let handle = serve(ServeConfig {
            jobs: 1,
            ..ServeConfig::default()
        })
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr).expect("connect");
        // A 1-cycle cap cannot finish anything: the job fails with a
        // deterministic DeadlineExceeded the daemon may also memoize.
        let mut s = spec(Benchmark::Amr, Variant::Flat, "errs");
        s.cycle_cap = Some(1);
        let job = client.submit(&s).unwrap();
        match client.wait(job, Duration::from_secs(120)) {
            Err(ClientError::Server { kind, message }) => {
                assert_eq!(kind, "sim");
                assert!(!message.is_empty());
            }
            other => panic!("expected sim error, got {other:?}"),
        }
        let snapshot = client.metrics().expect("metrics");
        assert_eq!(
            Json::as_u64(
                snapshot
                    .get("counters")
                    .and_then(|c| c.get("daemon.jobs_completed"))
                    .unwrap()
            ),
            Some(1)
        );
        client.shutdown().unwrap();
        handle.wait();
    }

    #[test]
    fn persisted_cache_survives_a_daemon_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!("gpu-serve-restart-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cfg = ServeConfig {
            jobs: 1,
            cache_file: Some(path.clone()),
            ..ServeConfig::default()
        };
        let handle = serve(cfg.clone()).expect("bind first daemon");
        let mut client = Client::connect(handle.addr).expect("connect");
        let job = client
            .submit(&spec(Benchmark::Amr, Variant::Flat, "p"))
            .unwrap();
        let first = client.wait(job, Duration::from_secs(120)).expect("run");
        client.shutdown().unwrap();
        handle.wait();
        assert!(path.exists(), "shutdown must persist the cache");

        let handle = serve(cfg).expect("bind second daemon");
        let mut client = Client::connect(handle.addr).expect("reconnect");
        let job = client
            .submit(&spec(Benchmark::Amr, Variant::Flat, "p"))
            .unwrap();
        let again = client.wait(job, Duration::from_secs(120)).expect("cached");
        assert_eq!(first.stats, again.stats);
        let snapshot = client.metrics().expect("metrics");
        assert!(
            client::snapshot_counter(&snapshot, "server.cache_hits") >= 1,
            "restart must serve the persisted result as a hit: {snapshot}"
        );
        assert_eq!(
            client::snapshot_counter(&snapshot, "server.cache_misses"),
            0,
            "the persisted cell must not re-run"
        );
        client.shutdown().unwrap();
        handle.wait();
        let _ = std::fs::remove_file(&path);
    }
}
