//! Fair batched admission: the submission queue between connection
//! threads and the warm-pool workers.
//!
//! In fair mode the queue keeps one lane per client id and drains them
//! in interleaved round-robin, so a client that dumps 100 cells cannot
//! starve a client that submits one. Weighted fairness is a knob on the
//! same machinery: a lane with weight `w` gets `w` consecutive pops per
//! round-robin turn before the rotation moves on. FCFS mode (the
//! `--fair` flag off) is a single global queue.
//!
//! The contract the daemon documents and `daemon_smoke` enforces: under
//! symmetric load with equal weights, no client's p95 admission latency
//! exceeds 3× another's.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One queued job: who submitted it, which job id it resolves, and when
/// it entered the queue (for admission-latency metrics).
#[derive(Debug)]
pub struct Ticket {
    /// Client id the fair queue interleaves over.
    pub client: String,
    /// Job id handed back to the submitter.
    pub job: u64,
    /// Enqueue instant; workers observe `now - enqueued` as the
    /// admission wait.
    pub enqueued: Instant,
}

/// A lane's pending jobs plus its weighted-fair bookkeeping.
#[derive(Debug, Default)]
struct Lane {
    q: VecDeque<Ticket>,
    /// Consecutive pops this lane gets per rotation turn.
    weight: u64,
    /// Pops remaining in the current turn.
    credit: u64,
}

#[derive(Debug)]
struct Inner {
    /// Fair mode: lanes keyed by client, drained in `order` rotation.
    lanes: HashMap<String, Lane>,
    /// Rotation of client ids with non-empty lanes (fair mode).
    order: VecDeque<String>,
    /// FCFS mode: the single global queue.
    fifo: VecDeque<Ticket>,
    closed: bool,
    depth: usize,
}

/// The admission queue. `fair` selects interleaved round-robin over
/// client ids; otherwise strict FCFS.
#[derive(Debug)]
pub struct AdmissionQueue {
    fair: bool,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl AdmissionQueue {
    /// An empty queue in the given mode.
    pub fn new(fair: bool) -> Self {
        AdmissionQueue {
            fair,
            inner: Mutex::new(Inner {
                lanes: HashMap::new(),
                order: VecDeque::new(),
                fifo: VecDeque::new(),
                closed: false,
                depth: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Whether this queue interleaves fairly over clients.
    pub fn is_fair(&self) -> bool {
        self.fair
    }

    /// Enqueues a ticket. `weight` updates the client's fair share (the
    /// latest submitted weight wins; clamped to ≥ 1). Returns `false`
    /// if the queue is closed and the ticket was refused.
    pub fn push(&self, ticket: Ticket, weight: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return false;
        }
        inner.depth += 1;
        if self.fair {
            let client = ticket.client.clone();
            let lane = inner.lanes.entry(client.clone()).or_default();
            let was_empty = lane.q.is_empty();
            lane.weight = weight.max(1);
            // A lowered weight takes effect immediately; a zero credit is
            // left for `take` to replenish at the lane's next turn.
            lane.credit = lane.credit.min(lane.weight);
            lane.q.push_back(ticket);
            if was_empty && !inner.order.contains(&client) {
                inner.order.push_back(client);
            }
        } else {
            inner.fifo.push_back(ticket);
        }
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Blocks until a ticket is available or the queue closes; `None`
    /// means closed *and* drained — workers should exit.
    pub fn pop(&self) -> Option<Ticket> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(t) = Self::take(self.fair, &mut inner) {
                inner.depth -= 1;
                return Some(t);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    fn take(fair: bool, inner: &mut Inner) -> Option<Ticket> {
        if !fair {
            return inner.fifo.pop_front();
        }
        // Round-robin over the client rotation. The lane at the head of
        // `order` pops one ticket and spends one credit; when its credit
        // or queue runs out, the turn ends and the lane moves to the back
        // (with a fresh credit of `weight`, so a weight-3 lane gets three
        // consecutive pops per visit).
        while let Some(client) = inner.order.front().cloned() {
            let lane = inner.lanes.get_mut(&client)?;
            if lane.q.is_empty() {
                inner.order.pop_front();
                lane.credit = 0;
                continue;
            }
            if lane.credit == 0 {
                lane.credit = lane.weight.max(1);
            }
            let t = lane.q.pop_front();
            lane.credit -= 1;
            let exhausted = lane.credit == 0 || lane.q.is_empty();
            if exhausted {
                lane.credit = 0;
                inner.order.pop_front();
                if !lane.q.is_empty() {
                    inner.order.push_back(client);
                }
            }
            return t;
        }
        None
    }

    /// Current number of queued tickets (for the queue-depth gauge).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().depth
    }

    /// Closes the queue: future pushes are refused, blocked workers wake,
    /// and every still-queued ticket is returned so the caller can fail
    /// the corresponding jobs instead of leaving waiters hanging.
    pub fn close(&self) -> Vec<Ticket> {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        let mut drained: Vec<Ticket> = inner.fifo.drain(..).collect();
        let clients: Vec<String> = inner.order.drain(..).collect();
        for client in clients {
            if let Some(lane) = inner.lanes.get_mut(&client) {
                drained.extend(lane.q.drain(..));
            }
        }
        inner.depth = 0;
        drop(inner);
        self.ready.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(client: &str, job: u64) -> Ticket {
        Ticket {
            client: client.to_string(),
            job,
            enqueued: Instant::now(),
        }
    }

    fn drain_order(q: &AdmissionQueue, n: usize) -> Vec<u64> {
        (0..n).map(|_| q.pop().unwrap().job).collect()
    }

    #[test]
    fn fcfs_preserves_submission_order() {
        let q = AdmissionQueue::new(false);
        for (i, c) in ["a", "a", "b", "a"].iter().enumerate() {
            assert!(q.push(t(c, i as u64), 1));
        }
        assert_eq!(drain_order(&q, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fair_mode_interleaves_clients() {
        let q = AdmissionQueue::new(true);
        // Client a floods first; b submits afterwards.
        for i in 0..4 {
            q.push(t("a", i), 1);
        }
        for i in 0..2 {
            q.push(t("b", 100 + i), 1);
        }
        // Round-robin: a, b, a, b, a, a.
        assert_eq!(drain_order(&q, 6), vec![0, 100, 1, 101, 2, 3]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn weights_grant_consecutive_pops() {
        let q = AdmissionQueue::new(true);
        for i in 0..4 {
            q.push(t("heavy", i), 2);
        }
        for i in 0..2 {
            q.push(t("light", 100 + i), 1);
        }
        // heavy ×2, light ×1, heavy ×2, light ×1.
        assert_eq!(drain_order(&q, 6), vec![0, 1, 100, 2, 3, 101]);
    }

    #[test]
    fn close_drains_and_refuses() {
        let q = AdmissionQueue::new(true);
        q.push(t("a", 1), 1);
        q.push(t("b", 2), 1);
        let drained = q.close();
        assert_eq!(drained.len(), 2);
        assert!(!q.push(t("a", 3), 1), "closed queue must refuse");
        assert!(q.pop().is_none(), "closed+drained pops None");
    }

    #[test]
    fn pop_blocks_until_push() {
        use std::sync::Arc;
        let q = Arc::new(AdmissionQueue::new(true));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().map(|t| t.job));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(t("a", 42), 1);
        assert_eq!(h.join().unwrap(), Some(42));
    }
}
