//! Disk persistence for the daemon's result cache.
//!
//! The cache file is JSONL: a header line naming the format and its
//! version, one line per `CellKey → RunReport` entry (LRU-first, so a
//! reload preserves recency), and a footer carrying the entry count. A
//! load accepts the file only if every layer checks out — parseable
//! JSON, matching version, matching hash scheme, and a footer count that
//! equals the entries seen (which catches truncated writes). *Any*
//! failure degrades to an empty (cold) cache; a stale or corrupt file is
//! never an error, because the daemon can always recompute.
//!
//! Writes go to a `.tmp` sibling and atomically rename into place, so a
//! crash mid-write leaves the previous file intact.
//!
//! Only `Ok` results are persisted. Memoized *errors* stay in-memory:
//! they are cheap to recompute and their in-memory lifetime is already
//! bounded by the daemon process that validated their determinism.

use crate::wire::{report_from_json, report_to_json};
use gpu_sim::{CellKey, GpuConfig};
use gpu_trace::json::Json;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use workloads::RunReport;

/// Cache file format version; bump on any layout change.
pub const CACHE_VERSION: u64 = 1;

/// Fingerprint of the key-hashing scheme. Computed from the hashes of a
/// fixed reference config, so any change to `GpuConfig::content_hash` or
/// `GpuConfig::budget_hash` — which silently re-keys every entry —
/// changes this value and discards persisted caches instead of serving
/// results under mismatched keys.
pub fn hash_scheme() -> u64 {
    let reference = GpuConfig::k20c();
    reference
        .content_hash()
        .rotate_left(17)
        .wrapping_mul(0x100_0000_01b3)
        ^ reference.budget_hash()
}

/// Serializes cache entries (as exported by
/// `BatchServer::export_cache`, LRU-first) into the file format.
pub fn to_jsonl(entries: &[(CellKey, RunReport)]) -> String {
    let mut out = String::new();
    let header = Json::Obj(vec![
        ("kind".into(), Json::Str("gpu-serve-cache".into())),
        ("version".into(), Json::Num(CACHE_VERSION as f64)),
        (
            "scheme".into(),
            Json::Str(format!("{:016x}", hash_scheme())),
        ),
    ]);
    out.push_str(&header.to_string());
    out.push('\n');
    for (key, report) in entries {
        let line = Json::Obj(vec![
            (
                "config_hash".into(),
                Json::Str(format!("{:016x}", key.config_hash)),
            ),
            (
                "budget_hash".into(),
                Json::Str(format!("{:016x}", key.budget_hash)),
            ),
            ("workload".into(), Json::Str(key.workload.clone())),
            ("seed".into(), Json::Num(key.seed as f64)),
            ("variant".into(), Json::Str(key.variant.clone())),
            ("report".into(), report_to_json(report)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    let footer = Json::Obj(vec![
        ("kind".into(), Json::Str("end".into())),
        ("entries".into(), Json::Num(entries.len() as f64)),
    ]);
    out.push_str(&footer.to_string());
    out.push('\n');
    out
}

/// Strictly parses a cache file's contents. Used by [`load`]; exposed
/// so tests can assert *why* a file was rejected.
pub fn from_jsonl(text: &str) -> Result<Vec<(CellKey, RunReport)>, String> {
    let mut lines = text.lines();
    let header = Json::parse(lines.next().ok_or("empty file")?)?;
    if header.get("kind").and_then(Json::as_str) != Some("gpu-serve-cache") {
        return Err("not a gpu-serve cache file".into());
    }
    match header.get("version").and_then(Json::as_u64) {
        Some(CACHE_VERSION) => {}
        v => return Err(format!("version mismatch: {v:?} != {CACHE_VERSION}")),
    }
    let want_scheme = format!("{:016x}", hash_scheme());
    if header.get("scheme").and_then(Json::as_str) != Some(want_scheme.as_str()) {
        return Err("hash scheme mismatch".into());
    }
    let mut entries = Vec::new();
    let mut footer_count: Option<u64> = None;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line)?;
        if v.get("kind").and_then(Json::as_str) == Some("end") {
            footer_count = v.get("entries").and_then(Json::as_u64);
            break;
        }
        let key = CellKey {
            config_hash: hex_u64(&v, "config_hash")?,
            budget_hash: hex_u64(&v, "budget_hash")?,
            workload: v
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("missing `workload`")?
                .to_string(),
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing `seed`")?,
            variant: v
                .get("variant")
                .and_then(Json::as_str)
                .ok_or("missing `variant`")?
                .to_string(),
        };
        let report = report_from_json(v.get("report").ok_or("missing `report`")?)?;
        entries.push((key, report));
    }
    match footer_count {
        Some(n) if n == entries.len() as u64 => Ok(entries),
        Some(n) => Err(format!("footer count {n} != {} entries", entries.len())),
        None => Err("truncated: no footer".into()),
    }
}

fn hex_u64(v: &Json, key: &str) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing `{key}`"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex in `{key}`: {e}"))
}

/// Loads a cache file, returning an empty vec on *any* problem — a
/// missing file is a fresh start, a corrupt/stale/truncated one a cold
/// cache. Returns the entries and, when the file was rejected, the
/// reason (for a startup log line).
pub fn load(path: &Path) -> (Vec<(CellKey, RunReport)>, Option<String>) {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return (Vec::new(), None),
    };
    match from_jsonl(&text) {
        Ok(entries) => (entries, None),
        Err(why) => (Vec::new(), Some(why)),
    }
}

/// Atomically writes the cache file: serialize to `<path>.tmp`, flush,
/// rename over `path`.
pub fn store(path: &Path, entries: &[(CellKey, RunReport)]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(to_jsonl(entries).as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Stats;
    use workloads::Variant;

    fn entry(workload: &str, cycles: u64) -> (CellKey, RunReport) {
        (
            CellKey {
                config_hash: 0xdead_beef,
                budget_hash: 0x0bad_cafe,
                workload: workload.to_string(),
                seed: 0,
                variant: "DTBL".to_string(),
            },
            RunReport {
                benchmark: workload.to_string(),
                variant: Variant::Dtbl,
                stats: Stats {
                    cycles,
                    ..Stats::default()
                },
                trace: None,
            },
        )
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gpu-serve-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_keys_order_and_stats() {
        let entries = vec![entry("amr", 10), entry("bht", 20)];
        let back = from_jsonl(&to_jsonl(&entries)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, entries[0].0);
        assert_eq!(back[0].1.stats, entries[0].1.stats);
        assert_eq!(back[1].0.workload, "bht");
        assert_eq!(back[1].1.stats.cycles, 20);
    }

    #[test]
    fn corrupted_file_loads_as_cold_cache() {
        let path = tmp_path("corrupt");
        fs::write(&path, "{\"kind\":\"gpu-serve-cache\"oops").unwrap();
        let (entries, why) = load(&path);
        assert!(entries.is_empty());
        assert!(why.is_some(), "rejection reason should be reported");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_loads_as_cold_cache() {
        let mut text = to_jsonl(&[entry("amr", 1)]);
        text = text.replacen("\"version\":1", "\"version\":999", 1);
        let err = from_jsonl(&text).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        let path = tmp_path("version");
        fs::write(&path, &text).unwrap();
        let (entries, why) = load(&path);
        assert!(entries.is_empty());
        assert!(why.unwrap().contains("version mismatch"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scheme_mismatch_loads_as_cold_cache() {
        let mut text = to_jsonl(&[entry("amr", 1)]);
        let scheme = format!("{:016x}", hash_scheme());
        text = text.replacen(&scheme, "0000000000000000", 1);
        let err = from_jsonl(&text).unwrap_err();
        assert!(err.contains("scheme"), "{err}");
    }

    #[test]
    fn truncated_write_loads_as_cold_cache() {
        let text = to_jsonl(&[entry("amr", 1), entry("bht", 2)]);
        // Missing footer: the write stopped at a line boundary.
        let lines: Vec<&str> = text.lines().collect();
        let no_footer = lines[..lines.len() - 1].join("\n");
        let err = from_jsonl(&no_footer).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // Mid-line truncation: the last entry is half-written JSON.
        let cut = &text[..text.len() - 40];
        assert!(from_jsonl(cut).is_err());
        let path = tmp_path("truncated");
        fs::write(&path, cut).unwrap();
        let (entries, why) = load(&path);
        assert!(entries.is_empty());
        assert!(why.is_some());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_silent_fresh_start() {
        let (entries, why) = load(Path::new("/nonexistent/gpu-serve.cache"));
        assert!(entries.is_empty());
        assert!(why.is_none(), "missing file is not an anomaly");
    }

    #[test]
    fn store_is_atomic_and_reloadable() {
        let path = tmp_path("atomic");
        let entries = vec![entry("amr", 7)];
        store(&path, &entries).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        let (back, why) = load(&path);
        assert!(why.is_none());
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].1.stats.cycles, 7);
        fs::remove_file(&path).unwrap();
    }
}
