//! The daemon: TCP accept loop, connection threads, warm-pool workers,
//! and the shutdown/persistence choreography tying the other modules
//! together.
//!
//! Life of a `submit`: the connection thread registers a job, parks the
//! spec, and enqueues a ticket on the [`AdmissionQueue`]; a worker pops
//! the ticket (fairly interleaved across clients), records its admission
//! wait, resolves the benchmark's [`CellSetup`] (built once per
//! `(benchmark, scale, config)` and reused), and drives the cell through
//! the shared [`BatchServer`] — which serves repeats from its LRU cache
//! and memoizes deterministic errors. The outcome lands in the
//! [`JobTable`], where `poll`/`wait`/`trace` find it.

use crate::admission::{AdmissionQueue, Ticket};
use crate::jobs::{JobState, JobTable, JobTraceError};
use crate::persist;
use crate::wire::{
    error_frame, hello_frame, metrics_to_json, ok_frame, parse_request, report_to_json,
    sim_error_frame, ErrorKind, Request, SubmitSpec,
};
use gpu_sim::sweep::CellOutcome;
use gpu_sim::{BatchServer, SimError, Stats};
use gpu_trace::json::Json;
use gpu_trace::MetricsRegistry;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use workloads::{CellSetup, RunReport};

/// Idle-read poll interval on connection sockets; bounds how long a
/// connection thread takes to notice a shutdown.
const READ_POLL: Duration = Duration::from_millis(200);

/// Daemon configuration (the `gpu-serve` binary's flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1; `0` binds an ephemeral port.
    pub port: u16,
    /// Warm-pool width; `0` uses the sweep default.
    pub jobs: usize,
    /// Retries per crashed cell.
    pub retries: u32,
    /// Cache persistence path; `None` disables persistence.
    pub cache_file: Option<PathBuf>,
    /// LRU bound on cached results; `None` is unbounded.
    pub cache_max_entries: Option<usize>,
    /// Fair (round-robin over clients) vs FCFS admission.
    pub fair: bool,
    /// Memoize deterministic typed errors. On by default: the wire
    /// exposes only deterministic budget knobs, so every daemon config
    /// is budget-free in the wall-clock sense.
    pub cache_errors: bool,
    /// Concurrent-connection cap; excess connects get an `overloaded`
    /// error frame and are dropped.
    pub max_connections: usize,
    /// Persist the cache every N completed jobs (`0` = only at
    /// shutdown). Ignored without `cache_file`.
    pub persist_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            jobs: 0,
            retries: 1,
            cache_file: None,
            cache_max_entries: Some(4096),
            fair: true,
            cache_errors: true,
            max_connections: 64,
            persist_every: 0,
        }
    }
}

/// Setup identity: benchmark + scale + the exact base config hashes.
type SetupKey = (String, String, u64, u64);

struct Shared {
    cfg: ServeConfig,
    server: BatchServer<RunReport>,
    queue: AdmissionQueue,
    jobs: JobTable,
    /// Submitted specs parked until a worker claims the job.
    specs: Mutex<HashMap<u64, SubmitSpec>>,
    /// Built workload setups, reused across jobs that share a cell base.
    setups: Mutex<HashMap<SetupKey, Arc<CellSetup>>>,
    /// Admission/daemon metrics (the server keeps its own registry).
    registry: Mutex<MetricsRegistry>,
    stop: AtomicBool,
    live_conns: AtomicUsize,
    completed: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    fn persist_now(&self) {
        let Some(path) = &self.cfg.cache_file else {
            return;
        };
        let entries: Vec<_> = self
            .server
            .export_cache()
            .into_iter()
            .filter_map(|(k, v)| v.ok().map(|r| (k, r)))
            .collect();
        if let Err(e) = persist::store(path, &entries) {
            eprintln!("gpu-serve: cache persist to {} failed: {e}", path.display());
        }
    }

    /// Flips the stop flag, fails every still-queued job, and pokes the
    /// accept loop awake. Idempotent.
    fn initiate_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        for ticket in self.queue.close() {
            self.jobs.complete(
                ticket.job,
                Err(SimError::Cancelled {
                    cycle: 0,
                    stats: Box::new(Stats::default()),
                }),
            );
        }
        // Unblock the blocking accept() so its thread can observe `stop`.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon: its bound address and the threads to join.
pub struct DaemonHandle {
    /// The loopback address the daemon is listening on.
    pub addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// Blocks until the daemon shuts down (via the wire `shutdown` op),
    /// then persists the cache.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Initiates shutdown locally and blocks until drained.
    pub fn shutdown(mut self) {
        self.shared.initiate_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.persist_now();
    }

    /// The shared batch server's metrics (cache hits/misses, contention).
    pub fn server_metrics(&self) -> MetricsRegistry {
        self.shared.server.metrics()
    }
}

/// Binds the listener, loads the persisted cache, and spawns the accept
/// loop plus the warm-pool workers.
pub fn serve(cfg: ServeConfig) -> std::io::Result<DaemonHandle> {
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let addr = listener.local_addr()?;

    let mut server = BatchServer::new(cfg.jobs, cfg.retries);
    if let Some(limit) = cfg.cache_max_entries {
        server = server.with_cache_limit(limit);
    }
    if cfg.cache_errors {
        server = server.with_error_cache(SimError::is_deterministic);
    }
    if let Some(path) = &cfg.cache_file {
        let (entries, rejected) = persist::load(path);
        if let Some(why) = rejected {
            eprintln!(
                "gpu-serve: ignoring cache file {} ({why}); starting cold",
                path.display()
            );
        } else if !entries.is_empty() {
            eprintln!(
                "gpu-serve: preloaded {} cached results from {}",
                entries.len(),
                path.display()
            );
        }
        server.preload(entries.into_iter().map(|(k, r)| (k, Ok(r))).collect());
    }

    let worker_count = server.jobs();
    let shared = Arc::new(Shared {
        queue: AdmissionQueue::new(cfg.fair),
        jobs: JobTable::new(),
        specs: Mutex::new(HashMap::new()),
        setups: Mutex::new(HashMap::new()),
        registry: Mutex::new(MetricsRegistry::new()),
        stop: AtomicBool::new(false),
        live_conns: AtomicUsize::new(0),
        completed: AtomicU64::new(0),
        addr,
        cfg,
        server,
    });

    let workers = (0..worker_count)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("gpu-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gpu-serve-accept".into())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn accept loop")
    };

    Ok(DaemonHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            let _ = write_line(
                &stream,
                &error_frame(ErrorKind::ShuttingDown, "daemon is stopping"),
            );
            return;
        }
        let live = shared.live_conns.fetch_add(1, Ordering::SeqCst);
        if live >= shared.cfg.max_connections {
            shared.live_conns.fetch_sub(1, Ordering::SeqCst);
            let _ = write_line(
                &stream,
                &error_frame(ErrorKind::Overloaded, "connection cap reached"),
            );
            continue;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("gpu-serve-conn".into())
            .spawn(move || {
                serve_connection(&shared, stream);
                shared.live_conns.fetch_sub(1, Ordering::SeqCst);
            });
    }
}

fn write_line(mut stream: &TcpStream, frame: &Json) -> std::io::Result<()> {
    let mut text = frame.to_string();
    text.push('\n');
    stream.write_all(text.as_bytes())
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    if write_line(&writer, &hello_frame(shared.server.jobs())).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return,
            Ok(_) if buf.last() != Some(&b'\n') => {
                // Timed out mid-line with bytes buffered; keep reading.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(_) => {
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let keep_going = dispatch(shared, &writer, line);
                if !keep_going {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one request line; returns `false` when the connection should
/// close (after a `shutdown`).
fn dispatch(shared: &Arc<Shared>, writer: &TcpStream, line: &str) -> bool {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(why) => {
            let _ = write_line(writer, &error_frame(ErrorKind::BadRequest, &why));
            return true;
        }
    };
    match request {
        Request::Submit(spec) => {
            let frame = submit(shared, spec);
            write_line(writer, &frame).is_ok()
        }
        Request::Poll { job } => {
            let frame = match shared.jobs.poll(job) {
                None => error_frame(ErrorKind::UnknownJob, &format!("job {job}")),
                Some(JobState::Done(res)) => match *res {
                    Ok(report) => done_frame(job, &report),
                    Err(e) => sim_error_frame(&e),
                },
                Some(state) => ok_frame(vec![
                    ("job".into(), Json::Num(job as f64)),
                    ("state".into(), Json::Str(state.name().into())),
                ]),
            };
            write_line(writer, &frame).is_ok()
        }
        Request::Wait { job, timeout_ms } => {
            let frame = match shared.jobs.wait(job, Duration::from_millis(timeout_ms)) {
                Ok(Ok(report)) => done_frame(job, &report),
                Ok(Err(e)) => sim_error_frame(&e),
                Err(true) => error_frame(ErrorKind::Timeout, &format!("job {job} still running")),
                Err(false) => error_frame(ErrorKind::UnknownJob, &format!("job {job}")),
            };
            write_line(writer, &frame).is_ok()
        }
        Request::Trace { job } => stream_trace(shared, writer, job),
        Request::Metrics => {
            let server_reg = shared.server.metrics();
            let mut daemon_reg = {
                let reg = shared.registry.lock().unwrap();
                reg.clone()
            };
            daemon_reg.set_gauge("daemon.queue_depth", shared.queue.depth() as f64);
            daemon_reg.set_gauge(
                "daemon.live_connections",
                shared.live_conns.load(Ordering::SeqCst) as f64,
            );
            daemon_reg.inc("daemon.jobs_created", shared.jobs.created());
            daemon_reg.inc(
                "daemon.jobs_completed",
                shared.completed.load(Ordering::SeqCst),
            );
            let frame = ok_frame(vec![(
                "metrics".into(),
                metrics_to_json(&[&server_reg, &daemon_reg]),
            )]);
            write_line(writer, &frame).is_ok()
        }
        Request::Ping => {
            write_line(writer, &ok_frame(vec![("pong".into(), Json::Bool(true))])).is_ok()
        }
        Request::Shutdown => {
            let _ = write_line(
                writer,
                &ok_frame(vec![("stopping".into(), Json::Bool(true))]),
            );
            shared.initiate_shutdown();
            false
        }
    }
}

fn done_frame(job: u64, report: &RunReport) -> Json {
    ok_frame(vec![
        ("job".into(), Json::Num(job as f64)),
        ("state".into(), Json::Str("done".into())),
        ("report".into(), report_to_json(report)),
    ])
}

fn submit(shared: &Arc<Shared>, spec: SubmitSpec) -> Json {
    if shared.stop.load(Ordering::SeqCst) {
        return error_frame(ErrorKind::ShuttingDown, "daemon is stopping");
    }
    let job = shared.jobs.create();
    let weight = spec.weight;
    let client = spec.client.clone();
    shared.specs.lock().unwrap().insert(job, spec);
    let accepted = shared.queue.push(
        Ticket {
            client,
            job,
            enqueued: Instant::now(),
        },
        weight,
    );
    if !accepted {
        shared.specs.lock().unwrap().remove(&job);
        return error_frame(ErrorKind::ShuttingDown, "admission queue closed");
    }
    ok_frame(vec![("job".into(), Json::Num(job as f64))])
}

fn stream_trace(shared: &Arc<Shared>, writer: &TcpStream, job: u64) -> bool {
    let trace = match shared.jobs.take_trace(job) {
        Err(JobTraceError::UnknownJob) => {
            return write_line(
                writer,
                &error_frame(ErrorKind::UnknownJob, &format!("job {job}")),
            )
            .is_ok();
        }
        Err(JobTraceError::NotDone) => {
            return write_line(
                writer,
                &error_frame(
                    ErrorKind::BadRequest,
                    &format!("job {job} has not finished"),
                ),
            )
            .is_ok();
        }
        Ok(t) => t,
    };
    let body = match trace {
        Some(data) => gpu_trace::export::jsonl(&[(format!("job{job}"), data)]),
        None => String::new(),
    };
    let lines = body.lines().count() as u64;
    let header = ok_frame(vec![
        ("streaming".into(), Json::Bool(true)),
        ("lines".into(), Json::Num(lines as f64)),
    ]);
    if write_line(writer, &header).is_err() {
        return false;
    }
    let mut w = writer;
    if !body.is_empty() && w.write_all(body.as_bytes()).is_err() {
        return false;
    }
    if lines > 0 && !body.ends_with('\n') && w.write_all(b"\n").is_err() {
        return false;
    }
    write_line(writer, &ok_frame(vec![("end".into(), Json::Bool(true))])).is_ok()
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(ticket) = shared.queue.pop() {
        let wait_us = ticket.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
        {
            let mut reg = shared.registry.lock().unwrap();
            reg.observe("admission.wait_us", wait_us);
            reg.observe(&format!("admission.wait_us.{}", ticket.client), wait_us);
        }
        shared.jobs.set_running(ticket.job);
        let spec = shared.specs.lock().unwrap().remove(&ticket.job);
        let result = match spec {
            Some(spec) => run_spec(shared, &spec),
            None => Err(SimError::KernelBuild {
                detail: "submission spec lost".into(),
            }),
        };
        // Count before waking waiters so a metrics read right after a
        // `wait` returns already sees this completion.
        let done = shared.completed.fetch_add(1, Ordering::SeqCst) + 1;
        shared.jobs.complete(ticket.job, result);
        if shared.cfg.persist_every > 0 && done.is_multiple_of(shared.cfg.persist_every) {
            shared.persist_now();
        }
    }
}

/// Resolves the spec's setup (building it at most once per distinct
/// base) and drives the cell through the shared batch server.
fn run_spec(shared: &Arc<Shared>, spec: &SubmitSpec) -> Result<RunReport, SimError> {
    let cfg = spec.gpu_config();
    let key: SetupKey = (
        spec.benchmark.name().to_string(),
        spec.scale.name().to_string(),
        cfg.content_hash(),
        cfg.budget_hash(),
    );
    let cached = shared.setups.lock().unwrap().get(&key).cloned();
    let setup = match cached {
        Some(s) => s,
        None => {
            // Built outside the lock: a concurrent duplicate build is
            // rare and benign, a serialized one would stall every worker.
            let built = Arc::new(CellSetup::new(spec.benchmark, spec.scale, cfg)?);
            shared
                .setups
                .lock()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::clone(&built))
                .clone()
        }
    };
    let outcomes = shared.server.run_batch(
        vec![(setup, spec.variant)],
        |(s, v): &(Arc<CellSetup>, _)| Some(s.cell_key(*v)),
        |(s, v), slot| s.run_warm(*v, slot),
    );
    let (_, outcome) = outcomes.into_iter().next().expect("one cell, one outcome");
    match outcome {
        CellOutcome::Ok(report) => Ok(report),
        CellOutcome::Err(e) => Err(e),
        CellOutcome::Crashed(report) => Err(SimError::CellCrashed {
            attempts: report.attempts,
            payload: report.payload,
        }),
    }
}
