//! The `gpu-serve` client: a blocking, dependency-free library over the
//! NDJSON protocol, used by the `gpu-serve-client` binary and the
//! `daemon_smoke` harness.

use crate::wire::{report_from_json, submit_to_json, SubmitSpec, PROTO_VERSION};
use gpu_trace::json::Json;
use gpu_trace::TraceData;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use workloads::RunReport;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The daemon sent something the protocol does not allow.
    Protocol(String),
    /// The daemon answered with an error frame.
    Server {
        /// The frame's `error.kind` (e.g. `unknown_job`, `sim`).
        kind: String,
        /// The frame's `error.message`.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { kind, message } => write!(f, "server [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A finished `poll` answer.
#[derive(Debug)]
pub enum JobStatus {
    /// Still in the admission queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished successfully (failed jobs answer as `sim` error frames).
    /// Boxed so the marker states stay pointer-sized.
    Done(Box<RunReport>),
}

/// One blocking connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    jobs: u64,
}

impl Client {
    /// Connects and validates the hello frame (name + protocol version).
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
            jobs: 0,
        };
        let hello = client.read_frame()?;
        if let Some(err) = hello.get("error") {
            return Err(ClientError::Server {
                kind: err
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        if hello.get("hello").and_then(Json::as_str) != Some("gpu-serve") {
            return Err(ClientError::Protocol("missing hello frame".into()));
        }
        match hello.get("proto").and_then(Json::as_u64) {
            Some(PROTO_VERSION) => {}
            v => {
                return Err(ClientError::Protocol(format!(
                    "protocol version mismatch: daemon speaks {v:?}, client {PROTO_VERSION}"
                )))
            }
        }
        client.jobs = hello.get("jobs").and_then(Json::as_u64).unwrap_or(0);
        Ok(client)
    }

    /// The daemon's advertised worker-pool width.
    pub fn server_jobs(&self) -> u64 {
        self.jobs
    }

    fn read_frame(&mut self) -> Result<Json, ClientError> {
        let line = self.read_raw_line()?;
        Json::parse(line.trim()).map_err(ClientError::Protocol)
    }

    fn read_raw_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("connection closed".into()));
        }
        Ok(line)
    }

    fn request(&mut self, frame: &Json) -> Result<Json, ClientError> {
        let mut text = frame.to_string();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        let reply = self.read_frame()?;
        match reply.get("error") {
            None => Ok(reply),
            Some(err) => Err(ClientError::Server {
                kind: err
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: err
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
        }
    }

    /// Submits a cell; returns its job id.
    pub fn submit(&mut self, spec: &SubmitSpec) -> Result<u64, ClientError> {
        let reply = self.request(&submit_to_json(spec))?;
        reply
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit reply without job id".into()))
    }

    /// Non-blocking status query.
    pub fn poll(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        let reply = self.request(&Json::Obj(vec![
            ("op".into(), Json::Str("poll".into())),
            ("job".into(), Json::Num(job as f64)),
        ]))?;
        match reply.get("state").and_then(Json::as_str) {
            Some("queued") => Ok(JobStatus::Queued),
            Some("running") => Ok(JobStatus::Running),
            Some("done") => {
                let report = reply
                    .get("report")
                    .ok_or_else(|| ClientError::Protocol("done frame without report".into()))?;
                Ok(JobStatus::Done(Box::new(
                    report_from_json(report).map_err(ClientError::Protocol)?,
                )))
            }
            other => Err(ClientError::Protocol(format!("bad poll state {other:?}"))),
        }
    }

    /// Blocks (server-side) until the job finishes; failed jobs surface
    /// as `ClientError::Server { kind: "sim", .. }`.
    pub fn wait(&mut self, job: u64, timeout: Duration) -> Result<RunReport, ClientError> {
        let reply = self.request(&Json::Obj(vec![
            ("op".into(), Json::Str("wait".into())),
            ("job".into(), Json::Num(job as f64)),
            (
                "timeout_ms".into(),
                Json::Num(timeout.as_millis().min(u64::MAX as u128) as f64),
            ),
        ]))?;
        let report = reply
            .get("report")
            .ok_or_else(|| ClientError::Protocol("wait reply without report".into()))?;
        report_from_json(report).map_err(ClientError::Protocol)
    }

    /// Streams and reassembles a finished job's recorded trace. `None`
    /// if the job ran untraced (or its trace was already taken).
    pub fn trace(&mut self, job: u64) -> Result<Option<TraceData>, ClientError> {
        let header = self.request(&Json::Obj(vec![
            ("op".into(), Json::Str("trace".into())),
            ("job".into(), Json::Num(job as f64)),
        ]))?;
        if header.get("streaming") != Some(&Json::Bool(true)) {
            return Err(ClientError::Protocol("trace reply is not a stream".into()));
        }
        let lines = header.get("lines").and_then(Json::as_u64).unwrap_or(0);
        let mut body = String::new();
        for _ in 0..lines {
            body.push_str(&self.read_raw_line()?);
        }
        let end = self.read_frame()?;
        if end.get("end") != Some(&Json::Bool(true)) {
            return Err(ClientError::Protocol(
                "trace stream missing end frame".into(),
            ));
        }
        if lines == 0 {
            return Ok(None);
        }
        let mut cells = gpu_trace::export::parse_jsonl(&body).map_err(ClientError::Protocol)?;
        Ok(cells.pop().map(|(_, data)| data))
    }

    /// Full metrics snapshot (`counters` / `gauges` / `histograms`).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let reply = self.request(&Json::Obj(vec![("op".into(), Json::Str("metrics".into()))]))?;
        reply
            .get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("metrics reply without payload".into()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Json::Obj(vec![("op".into(), Json::Str("ping".into()))]))?;
        Ok(())
    }

    /// Asks the daemon to stop (it persists its cache on the way down).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Json::Obj(vec![(
            "op".into(),
            Json::Str("shutdown".into()),
        )]))?;
        Ok(())
    }
}

/// Convenience: read one counter out of a [`Client::metrics`] snapshot.
pub fn snapshot_counter(snapshot: &Json, name: &str) -> u64 {
    snapshot
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Convenience: one histogram percentile from a metrics snapshot
/// (`None` when the histogram or percentile is absent).
pub fn snapshot_percentile(snapshot: &Json, name: &str, pct: &str) -> Option<u64> {
    snapshot
        .get("histograms")
        .and_then(|h| h.get(name))
        .and_then(|h| h.get(pct))
        .and_then(Json::as_u64)
}
