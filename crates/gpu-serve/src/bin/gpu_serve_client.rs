//! The `gpu-serve-client` binary: a thin command-line front end over
//! [`gpu_serve::Client`], handy for poking a daemon by hand.
//!
//! ```text
//! gpu-serve-client --addr 127.0.0.1:PORT ping
//! gpu-serve-client --addr 127.0.0.1:PORT submit --benchmark amr --variant DTBL \
//!     [--scale test|eval] [--config k20c|test_small] [--client NAME] [--weight N] \
//!     [--cycle-cap N] [--max-cycles N] [--trace] [--wait]
//! gpu-serve-client --addr 127.0.0.1:PORT poll JOB
//! gpu-serve-client --addr 127.0.0.1:PORT wait JOB [--timeout-ms N]
//! gpu-serve-client --addr 127.0.0.1:PORT trace JOB
//! gpu-serve-client --addr 127.0.0.1:PORT metrics
//! gpu-serve-client --addr 127.0.0.1:PORT shutdown
//! ```
//!
//! `submit` prints the job id (or, with `--wait`, blocks and prints the
//! finished report's headline stats); `metrics` prints the JSON snapshot.

use gpu_serve::client::{Client, JobStatus};
use gpu_serve::wire::{ConfigPreset, SubmitSpec};
use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;
use workloads::{Benchmark, RunReport, Scale, Variant};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn die(msg: &str) -> ! {
    eprintln!("gpu-serve-client: {msg}");
    exit(2);
}

fn print_report(r: &RunReport) {
    println!(
        "{} {}: {} cycles, {} launches, {} TBs",
        r.benchmark,
        r.variant.label(),
        r.stats.cycles,
        r.stats.launches.len(),
        r.stats.tb_completed
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: SocketAddr = flag_value(&args, "--addr")
        .unwrap_or_else(|| die("--addr 127.0.0.1:PORT is required"))
        .parse()
        .unwrap_or_else(|e| die(&format!("bad --addr: {e}")));
    let command = args
        .iter()
        .find(|a| !a.starts_with("--") && a.parse::<SocketAddr>().is_err())
        .cloned()
        .unwrap_or_else(|| die("missing command (ping|submit|poll|wait|trace|metrics|shutdown)"));

    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gpu-serve-client: connect failed: {e}");
            exit(1);
        }
    };

    let job_arg = || -> u64 {
        args.iter()
            .skip_while(|a| **a != command)
            .nth(1)
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| die("expected a numeric JOB argument"))
    };
    let timeout = Duration::from_millis(
        flag_value(&args, "--timeout-ms")
            .map(|v| v.parse().unwrap_or_else(|_| die("bad --timeout-ms")))
            .unwrap_or(120_000),
    );

    let outcome = match command.as_str() {
        "ping" => client.ping().map(|()| println!("pong")),
        "metrics" => client.metrics().map(|m| println!("{m}")),
        "shutdown" => client.shutdown().map(|()| println!("stopping")),
        "poll" => client.poll(job_arg()).map(|s| match s {
            JobStatus::Queued => println!("queued"),
            JobStatus::Running => println!("running"),
            JobStatus::Done(r) => print_report(&r),
        }),
        "wait" => client.wait(job_arg(), timeout).map(|r| print_report(&r)),
        "trace" => client.trace(job_arg()).map(|t| match t {
            Some(data) => print!(
                "{}",
                gpu_trace::export::jsonl(&[("cell".to_string(), data)])
            ),
            None => eprintln!("no trace recorded (submit with --trace, fetch once)"),
        }),
        "submit" => {
            let benchmark = flag_value(&args, "--benchmark")
                .map(|s| {
                    Benchmark::from_name(s)
                        .unwrap_or_else(|| die(&format!("unknown --benchmark '{s}' (e.g. amr)")))
                })
                .unwrap_or_else(|| die("--benchmark NAME is required (e.g. amr)"));
            let variant = flag_value(&args, "--variant")
                .map(|s| {
                    Variant::from_label(s).unwrap_or_else(|| {
                        die(&format!(
                            "unknown --variant '{s}' (one of Flat|CDP|CDPI|DTBL|DTBLI|DTBL-NC)"
                        ))
                    })
                })
                .unwrap_or_else(|| die("--variant LABEL is required (e.g. DTBL)"));
            let scale = flag_value(&args, "--scale")
                .map(|s| Scale::from_name(s).unwrap_or_else(|| die("bad --scale")))
                .unwrap_or(Scale::Test);
            let preset = flag_value(&args, "--config")
                .map(|s| ConfigPreset::from_name(s).unwrap_or_else(|| die("bad --config")))
                .unwrap_or(ConfigPreset::K20c);
            let spec = SubmitSpec {
                benchmark,
                variant,
                scale,
                client: flag_value(&args, "--client").unwrap_or("cli").to_string(),
                weight: flag_value(&args, "--weight")
                    .map(|v| v.parse().unwrap_or_else(|_| die("bad --weight")))
                    .unwrap_or(1),
                preset,
                max_cycles: flag_value(&args, "--max-cycles")
                    .map(|v| v.parse().unwrap_or_else(|_| die("bad --max-cycles"))),
                cycle_cap: flag_value(&args, "--cycle-cap")
                    .map(|v| v.parse().unwrap_or_else(|_| die("bad --cycle-cap"))),
                trace: args.iter().any(|a| a == "--trace"),
            };
            client.submit(&spec).and_then(|job| {
                if args.iter().any(|a| a == "--wait") {
                    client.wait(job, timeout).map(|r| print_report(&r))
                } else {
                    println!("{job}");
                    Ok(())
                }
            })
        }
        other => die(&format!("unknown command `{other}`")),
    };
    if let Err(e) = outcome {
        eprintln!("gpu-serve-client: {e}");
        exit(1);
    }
}
