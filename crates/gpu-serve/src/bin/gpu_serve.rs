//! The `gpu-serve` daemon binary.
//!
//! ```text
//! gpu-serve [--port N] [--jobs N] [--retries N]
//!           [--cache-file PATH] [--cache-max-entries N] [--persist-every N]
//!           [--fcfs] [--no-cache-errors] [--max-conns N]
//! ```
//!
//! Binds 127.0.0.1 (`--port 0` for an ephemeral port), prints one
//! `gpu-serve listening on ADDR` line to stdout, and runs until a client
//! sends `shutdown` — persisting the result cache on the way down when
//! `--cache-file` is set. Admission is fair (weighted round-robin over
//! client ids) unless `--fcfs` selects strict arrival order.

use gpu_serve::daemon::{serve, ServeConfig};
use std::io::Write;
use std::path::PathBuf;
use std::process::exit;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("gpu-serve: bad value for {flag}: {v}");
            exit(2);
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "gpu-serve [--port N] [--jobs N] [--retries N] [--cache-file PATH]\n\
             \u{20}         [--cache-max-entries N] [--persist-every N] [--fcfs]\n\
             \u{20}         [--no-cache-errors] [--max-conns N]"
        );
        return;
    }
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        port: parsed(&args, "--port").unwrap_or(0),
        jobs: parsed(&args, "--jobs").unwrap_or(0),
        retries: parsed(&args, "--retries").unwrap_or(defaults.retries),
        cache_file: flag_value(&args, "--cache-file").map(PathBuf::from),
        cache_max_entries: parsed(&args, "--cache-max-entries")
            .map(|n: usize| if n == 0 { None } else { Some(n) })
            .unwrap_or(defaults.cache_max_entries),
        fair: !args.iter().any(|a| a == "--fcfs"),
        cache_errors: !args.iter().any(|a| a == "--no-cache-errors"),
        max_connections: parsed(&args, "--max-conns").unwrap_or(defaults.max_connections),
        persist_every: parsed(&args, "--persist-every").unwrap_or(defaults.persist_every),
    };
    match serve(cfg) {
        Ok(handle) => {
            println!("gpu-serve listening on {}", handle.addr);
            let _ = std::io::stdout().flush();
            handle.wait();
        }
        Err(e) => {
            eprintln!("gpu-serve: bind failed: {e}");
            exit(1);
        }
    }
}
