//! Minimal deterministic PRNG with a `rand`-compatible surface.
//!
//! The workspace must build with no network access, so instead of the
//! `rand` crate the data generators use this self-contained implementation:
//! xoshiro256** (Blackman & Vigna) seeded through splitmix64, exposed via
//! `Rng` / `SeedableRng` traits mirroring the subset of `rand`'s API the
//! repo uses (`seed_from_u64`, `gen`, `gen_range` over half-open and
//! inclusive integer ranges, `gen_bool`). Streams are stable across
//! platforms and releases: changing them invalidates every recorded
//! benchmark figure, so treat the output as a fixed contract.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator core.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling helpers, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// The workspace's standard generator: xoshiro256** with splitmix64
/// seed expansion. Not cryptographic; statistical quality is ample for
/// synthetic workload data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept so call sites can name a cheap generator like `rand`'s
/// `SmallRng`; identical to [`StdRng`] here.
pub type SmallRng = StdRng;

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform draw in `[0, span)` via 128-bit multiply-shift (unbiased
/// enough for synthetic data; avoids modulo's low-bit artifacts).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Re-exports mirroring `rand`'s module layout so imports port 1:1.
pub mod rngs {
    pub use super::{SmallRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.85)).count();
        assert!((8_300..8_700).contains(&hits), "{hits} of 10000");
        assert!((0..1_000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1_000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5u32..5);
    }
}
