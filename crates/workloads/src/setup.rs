//! The setup/run split: an immutable, shareable [`CellSetup`] per
//! benchmark versus the per-run mutable state that lives in a [`Gpu`].
//!
//! A sweep cell used to rebuild everything from scratch — workload data
//! generation, kernel construction and decode, config plumbing — even
//! though all of it is a pure function of `(benchmark, scale, base
//! config)`. A [`CellSetup`] computes that function once: the workload
//! buffers are built a single time and shared behind `Arc`s, and the
//! [`Program`] for *every* variant is decoded up front — including each
//! kernel's micro-op program (`gpu_isa::decode`), so the executors never
//! re-inspect instruction encodings on the hot path (a `Program` clone
//! is an `Arc` refcount bump per kernel, micro-ops included, pinned by
//! `Program::shares_kernels`). Running a cell is then only the mutable
//! half: bind a fresh — or warm-rebound, via
//! [`WarmSlot`](gpu_sim::WarmSlot) — simulator and drive the app's
//! launch/readback loop.
//!
//! The setup also knows its cells' content address
//! ([`cell_key`](CellSetup::cell_key)), which is what lets the
//! [`BatchServer`](gpu_sim::BatchServer) serve repeated cells from its
//! result cache with a bit-identity guarantee.

use crate::apps;
use crate::common::Variant;
use crate::data::mesh::ScalarField;
use crate::data::points::PointSet;
use crate::data::ratings::RatingSet;
use crate::data::relations::JoinInput;
use crate::data::strings::PacketSet;
use crate::data::{graph, mesh, points, ratings, relations, strings, CsrGraph};
use crate::harness::{Benchmark, Scale};
use crate::report::RunReport;
use gpu_isa::{KernelId, Program};
use gpu_sim::server::CellKey;
use gpu_sim::{Gpu, GpuConfig, SimError, WarmSlot};
use std::sync::Arc;

/// The built workload buffers of one benchmark, shared behind an `Arc` so
/// every variant cell of the benchmark reads the same data (asserted via
/// `Arc::ptr_eq` in the sweep tests).
#[derive(Clone, Debug)]
pub enum AppData {
    /// AMR's combustion-like scalar field.
    Mesh(Arc<ScalarField>),
    /// BHT's point set.
    Points(Arc<PointSet>),
    /// BFS/CLR/SSSP graph.
    Graph(Arc<CsrGraph>),
    /// REGX packet set.
    Packets(Arc<PacketSet>),
    /// PRE rating matrix.
    Ratings(Arc<RatingSet>),
    /// JOIN probe/build relation.
    Join(Arc<JoinInput>),
}

impl AppData {
    /// True when `self` and `other` are the *same* buffers (pointer
    /// identity, not value equality).
    pub fn ptr_eq(&self, other: &AppData) -> bool {
        match (self, other) {
            (AppData::Mesh(a), AppData::Mesh(b)) => Arc::ptr_eq(a, b),
            (AppData::Points(a), AppData::Points(b)) => Arc::ptr_eq(a, b),
            (AppData::Graph(a), AppData::Graph(b)) => Arc::ptr_eq(a, b),
            (AppData::Packets(a), AppData::Packets(b)) => Arc::ptr_eq(a, b),
            (AppData::Ratings(a), AppData::Ratings(b)) => Arc::ptr_eq(a, b),
            (AppData::Join(a), AppData::Join(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Builds a benchmark's workload data at `scale` (the data half of the
/// old monolithic `run_with` match). Deterministic: each benchmark uses
/// fixed generation seeds, so the data is a pure function of
/// `(benchmark, scale)`.
pub(crate) fn build_data(benchmark: Benchmark, scale: Scale) -> AppData {
    let t = scale == Scale::Test;
    match benchmark {
        Benchmark::Amr => AppData::Mesh(Arc::new(mesh::combustion_field(
            if t { 128 } else { 1024 },
            6,
            11,
        ))),
        Benchmark::Bht => AppData::Points(Arc::new(points::random_points(
            if t { 600 } else { 40_000 },
            11,
            12,
        ))),
        Benchmark::BfsCitation => AppData::Graph(Arc::new(graph::citation(
            if t { 600 } else { 24_000 },
            4,
            13,
        ))),
        Benchmark::BfsUsaRoad => {
            let (w, h) = if t { (20, 16) } else { (140, 100) };
            AppData::Graph(Arc::new(graph::usa_road(w, h)))
        }
        Benchmark::BfsCage15 => AppData::Graph(Arc::new(graph::cage15_like(
            if t { 600 } else { 6_000 },
            2_000,
            30,
            14,
        ))),
        Benchmark::ClrCitation => AppData::Graph(Arc::new(graph::citation(
            if t { 400 } else { 10_000 },
            4,
            15,
        ))),
        Benchmark::ClrGraph500 => AppData::Graph(Arc::new(graph::graph500_logn(
            if t { 400 } else { 1_500 },
            16,
            16,
        ))),
        Benchmark::ClrCage15 => AppData::Graph(Arc::new(graph::cage15_like(
            if t { 400 } else { 1_500 },
            800,
            30,
            17,
        ))),
        Benchmark::RegxDarpa => AppData::Packets(Arc::new(strings::darpa_like(
            if t { 150 } else { 4_000 },
            18,
        ))),
        Benchmark::RegxString => AppData::Packets(Arc::new(strings::random_strings(
            if t { 60 } else { 2_500 },
            19,
        ))),
        Benchmark::PreMovielens => AppData::Ratings(Arc::new(ratings::movielens_like(
            if t { 80 } else { 3_000 },
            if t { 800 } else { 12_000 },
            if t { 300 } else { 240 },
            20,
        ))),
        Benchmark::JoinUniform => AppData::Join(Arc::new(relations::join_input(
            relations::KeyDist::Uniform,
            if t { 2_000 } else { 120_000 },
            if t { 500 } else { 20_000 },
            if t { 512 } else { 32_768 },
            21,
        ))),
        Benchmark::JoinGaussian => AppData::Join(Arc::new(relations::join_input(
            relations::KeyDist::Gaussian,
            if t { 2_000 } else { 120_000 },
            if t { 500 } else { 20_000 },
            if t { 512 } else { 32_768 },
            22,
        ))),
        Benchmark::SsspCitation => AppData::Graph(Arc::new(
            graph::citation(if t { 400 } else { 12_000 }, 4, 23).with_random_weights(9, 23),
        )),
        Benchmark::SsspFlight => AppData::Graph(Arc::new(
            graph::flight(if t { 400 } else { 12_000 }, if t { 8 } else { 500 }, 24)
                .with_random_weights(9, 24),
        )),
        Benchmark::SsspCage15 => AppData::Graph(Arc::new(
            graph::cage15_like(if t { 400 } else { 4_000 }, 1_500, 30, 25)
                .with_random_weights(9, 25),
        )),
    }
}

/// Builds a benchmark's program for one variant, returning the kernel ids
/// in the app's positional order (the program half of the old monolithic
/// match).
pub(crate) fn prepare(
    benchmark: Benchmark,
    variant: Variant,
) -> Result<(Program, Vec<KernelId>), SimError> {
    Ok(match benchmark {
        Benchmark::Amr => {
            let (prog, parent) = apps::amr::build_program(variant)?;
            (prog, vec![parent])
        }
        Benchmark::Bht => {
            let (prog, count_k, emit_k, scatter_k) = apps::bht::build_program(variant)?;
            (prog, vec![count_k, emit_k, scatter_k])
        }
        Benchmark::BfsCitation | Benchmark::BfsUsaRoad | Benchmark::BfsCage15 => {
            let (prog, parent, child) = apps::bfs::build_program(variant)?;
            (prog, vec![parent, child])
        }
        Benchmark::ClrCitation | Benchmark::ClrGraph500 | Benchmark::ClrCage15 => {
            let (prog, check, assign) = apps::clr::build_program(variant)?;
            (prog, vec![check, assign])
        }
        Benchmark::RegxDarpa | Benchmark::RegxString => {
            let (prog, parent) = apps::regx::build_program(variant)?;
            (prog, vec![parent])
        }
        Benchmark::PreMovielens => {
            let (prog, parent) = apps::pre::build_program(variant)?;
            (prog, vec![parent])
        }
        Benchmark::JoinUniform | Benchmark::JoinGaussian => {
            let (prog, probe) = apps::join::build_program(variant)?;
            (prog, vec![probe])
        }
        Benchmark::SsspCitation | Benchmark::SsspFlight | Benchmark::SsspCage15 => {
            let (prog, parent) = apps::sssp::build_program(variant)?;
            (prog, vec![parent])
        }
    })
}

/// BFS/SSSP source vertex used by every benchmark of those families.
const SOURCE: u32 = 0;
/// AMR top-level cell size.
const AMR_CELL0: u32 = 32;

/// Drives one cell's mutable phase on an already-bound `gpu` (the drive
/// half of the old monolithic match).
pub(crate) fn drive_on(
    gpu: &mut Gpu,
    benchmark: Benchmark,
    data: &AppData,
    ids: &[KernelId],
    variant: Variant,
) -> Result<RunReport, SimError> {
    let name = benchmark.name();
    match (benchmark, data) {
        (Benchmark::Amr, AppData::Mesh(f)) => {
            apps::amr::drive(gpu, name, f, AMR_CELL0, ids[0], variant)
        }
        (Benchmark::Bht, AppData::Points(p)) => {
            apps::bht::drive(gpu, name, p, ids[0], ids[1], ids[2], variant)
        }
        (
            Benchmark::BfsCitation | Benchmark::BfsUsaRoad | Benchmark::BfsCage15,
            AppData::Graph(g),
        ) => apps::bfs::drive(gpu, name, g, SOURCE, ids[0], variant),
        (
            Benchmark::ClrCitation | Benchmark::ClrGraph500 | Benchmark::ClrCage15,
            AppData::Graph(g),
        ) => apps::clr::drive(gpu, name, g, ids[0], ids[1], variant),
        (Benchmark::RegxDarpa | Benchmark::RegxString, AppData::Packets(p)) => {
            apps::regx::drive(gpu, name, p, ids[0], variant)
        }
        (Benchmark::PreMovielens, AppData::Ratings(r)) => {
            apps::pre::drive(gpu, name, r, ids[0], variant)
        }
        (Benchmark::JoinUniform | Benchmark::JoinGaussian, AppData::Join(j)) => {
            apps::join::drive(gpu, name, j, ids[0], variant)
        }
        (
            Benchmark::SsspCitation | Benchmark::SsspFlight | Benchmark::SsspCage15,
            AppData::Graph(g),
        ) => apps::sssp::drive(gpu, name, g, SOURCE, ids[0], variant),
        _ => unreachable!("build_data always pairs {benchmark:?} with its data family"),
    }
}

/// The old per-cell cold path, kept as the construction-per-run baseline:
/// build data, build one variant's program, build a fresh [`Gpu`], drive.
pub(crate) fn run_cold(
    benchmark: Benchmark,
    variant: Variant,
    scale: Scale,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let data = build_data(benchmark, scale);
    let (prog, ids) = prepare(benchmark, variant)?;
    let mut gpu = Gpu::new(variant.configure(base_cfg), prog);
    drive_on(&mut gpu, benchmark, &data, &ids, variant)
}

/// The immutable half of one benchmark's sweep cells: built workload
/// buffers, decoded per-variant programs, and the resolved base config.
/// Build it once, run any variant any number of times — cold
/// ([`run`](CellSetup::run)) or on a pooled warm simulator
/// ([`run_warm`](CellSetup::run_warm)).
#[derive(Clone, Debug)]
pub struct CellSetup {
    benchmark: Benchmark,
    scale: Scale,
    base_cfg: GpuConfig,
    data: AppData,
    /// One prepared `(program, kernel ids)` per [`Variant::ALL`] entry.
    progs: Vec<(Program, Vec<KernelId>)>,
}

impl CellSetup {
    /// Builds the setup: workload data once, a program per variant.
    ///
    /// # Errors
    ///
    /// Any kernel-construction [`SimError`].
    pub fn new(benchmark: Benchmark, scale: Scale, base_cfg: GpuConfig) -> Result<Self, SimError> {
        let data = build_data(benchmark, scale);
        let progs = Variant::ALL
            .iter()
            .map(|&v| prepare(benchmark, v))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CellSetup {
            benchmark,
            scale,
            base_cfg,
            data,
            progs,
        })
    }

    /// The benchmark this setup serves.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The problem scale the data was built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The shared workload buffers.
    pub fn data(&self) -> &AppData {
        &self.data
    }

    /// The prepared program (and its kernel ids) for `variant`.
    pub fn program(&self, variant: Variant) -> &(Program, Vec<KernelId>) {
        &self.progs[variant.index()]
    }

    /// The fully-resolved config a `variant` cell runs under (base config
    /// with the variant's knobs applied) — the config that feeds the
    /// cache key's `config_hash`.
    pub fn run_cfg(&self, variant: Variant) -> GpuConfig {
        variant.configure(self.base_cfg.clone())
    }

    /// Content address of this setup's `variant` cell. The workload data
    /// here is a pure function of `(benchmark, scale)` (fixed generation
    /// seeds), so the scale discriminant is the dataset seed.
    pub fn cell_key(&self, variant: Variant) -> CellKey {
        let cfg = self.run_cfg(variant);
        CellKey {
            config_hash: cfg.content_hash(),
            budget_hash: cfg.budget_hash(),
            workload: self.benchmark.name().to_string(),
            seed: match self.scale {
                Scale::Test => 0,
                Scale::Eval => 1,
            },
            variant: variant.label().to_string(),
        }
    }

    /// Runs `variant` on a *fresh* simulator (cold construction). The
    /// data and program are still shared — only the `Gpu` is new.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the run or its validation.
    pub fn run(&self, variant: Variant) -> Result<RunReport, SimError> {
        let (prog, ids) = self.program(variant);
        let mut gpu = Gpu::new(self.run_cfg(variant), prog.clone());
        drive_on(&mut gpu, self.benchmark, &self.data, ids, variant)
    }

    /// Runs `variant` on a pooled simulator: reset + bind instead of
    /// construction. Bit-identical to [`run`](CellSetup::run) (pinned by
    /// the engine-equivalence differential tests).
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the run or its validation.
    pub fn run_warm(&self, variant: Variant, slot: &mut WarmSlot) -> Result<RunReport, SimError> {
        let (prog, ids) = self.program(variant);
        let gpu = slot.bind(self.run_cfg(variant), prog.clone());
        drive_on(gpu, self.benchmark, &self.data, ids, variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_share_data_and_cold_matches_legacy() -> Result<(), SimError> {
        let setup = CellSetup::new(Benchmark::BfsCitation, Scale::Test, GpuConfig::test_small())?;
        // Cloning a setup (one clone per sweep cell) shares the workload
        // buffers rather than rebuilding them.
        let cell = setup.clone();
        assert!(cell.data().ptr_eq(setup.data()));
        // Programs are prepared per variant and handed out by refcount
        // bump, not re-decoded.
        let (prog, _) = setup.program(Variant::Dtbl);
        assert!(prog.shares_kernels(&setup.program(Variant::Dtbl).0));

        let from_setup = setup.run(Variant::Dtbl)?;
        let legacy =
            Benchmark::BfsCitation.run_with(Variant::Dtbl, Scale::Test, GpuConfig::test_small())?;
        assert_eq!(
            from_setup.stats, legacy.stats,
            "setup path is bit-identical"
        );
        Ok(())
    }

    #[test]
    fn warm_run_is_bit_identical_to_cold() -> Result<(), SimError> {
        let setup = CellSetup::new(Benchmark::JoinUniform, Scale::Test, GpuConfig::test_small())?;
        let cold = setup.run(Variant::Cdp)?;
        let mut slot = WarmSlot::new();
        // Dirty the slot with a different benchmark+variant first.
        let other = CellSetup::new(Benchmark::RegxString, Scale::Test, GpuConfig::test_small())?;
        other.run_warm(Variant::Dtbl, &mut slot)?;
        let warm = setup.run_warm(Variant::Cdp, &mut slot)?;
        assert_eq!(cold.stats, warm.stats);
        assert_eq!(slot.cold_builds(), 1);
        assert_eq!(slot.warm_binds(), 1);
        Ok(())
    }

    #[test]
    fn cell_keys_distinguish_variant_config_and_workload() -> Result<(), SimError> {
        let setup = CellSetup::new(Benchmark::Amr, Scale::Test, GpuConfig::test_small())?;
        let flat = setup.cell_key(Variant::Flat);
        assert_eq!(flat, setup.cell_key(Variant::Flat), "keys are stable");
        assert_ne!(flat, setup.cell_key(Variant::Dtbl));
        // Ideal variants differ from measured ones via config_hash even
        // before the label: zeroed latencies are a different machine.
        assert_ne!(
            setup.cell_key(Variant::Cdp).config_hash,
            setup.cell_key(Variant::CdpIdeal).config_hash
        );
        let other = CellSetup::new(Benchmark::Bht, Scale::Test, GpuConfig::test_small())?;
        assert_ne!(flat, other.cell_key(Variant::Flat));
        // Deterministic budget knobs change the key (so a memoized typed
        // error never leaks across budgets) without touching config_hash.
        let mut capped_cfg = GpuConfig::test_small();
        capped_cfg.budget.cycle_cap = Some(50);
        let capped = CellSetup::new(Benchmark::Amr, Scale::Test, capped_cfg)?;
        let capped_key = capped.cell_key(Variant::Flat);
        assert_eq!(flat.config_hash, capped_key.config_hash);
        assert_ne!(flat.budget_hash, capped_key.budget_hash);
        assert_ne!(flat, capped_key);
        Ok(())
    }
}
