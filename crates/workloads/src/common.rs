//! Shared plumbing for the benchmark implementations: execution variants
//! and the nested-parallelism code-generation helper.

use gpu_isa::{CmpOp, CmpTy, Kernel, KernelBuilder, KernelId, Op, Reg};
use gpu_sim::{GpuConfig, LatencyTable, SimError};

/// Finalizes a kernel, converting an assembly failure into the typed
/// [`SimError::KernelBuild`] so workload construction bugs surface as
/// clean errors instead of panics.
pub fn build_kernel(b: KernelBuilder) -> Result<Kernel, SimError> {
    b.build().map_err(|e| SimError::KernelBuild {
        detail: e.to_string(),
    })
}

/// Compares a device result against the host reference, failing with
/// [`SimError::ValidationFailed`] that names the first divergence and the
/// total mismatch count.
pub fn validate_u32(app: &str, what: &str, got: &[u32], want: &[u32]) -> Result<(), SimError> {
    if got.len() != want.len() {
        return Err(SimError::ValidationFailed {
            app: app.to_string(),
            detail: format!("{what}: length {} != expected {}", got.len(), want.len()),
        });
    }
    let mismatches = got.iter().zip(want).filter(|(g, w)| g != w).count();
    if let Some(i) = got.iter().zip(want).position(|(g, w)| g != w) {
        return Err(SimError::ValidationFailed {
            app: app.to_string(),
            detail: format!(
                "{what}[{i}]: got {}, want {} ({mismatches} mismatch(es) of {} values)",
                got[i],
                want[i],
                got.len()
            ),
        });
    }
    Ok(())
}

/// Scalar flavour of [`validate_u32`].
pub fn validate_scalar(app: &str, what: &str, got: u32, want: u32) -> Result<(), SimError> {
    if got != want {
        return Err(SimError::ValidationFailed {
            app: app.to_string(),
            detail: format!("{what}: got {got}, want {want}"),
        });
    }
    Ok(())
}

/// How a benchmark handles its dynamically-formed pockets of parallelism
/// (DFP) — the five bars of the paper's figures plus the §4.3 ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Original implementation: the nested loop is serialized inside each
    /// thread ("flat", the paper's baseline).
    Flat,
    /// CUDA Dynamic Parallelism: device kernels launched per DFP, with
    /// measured launch latencies.
    Cdp,
    /// CDP with zeroed launch latencies (CDPI).
    CdpIdeal,
    /// Dynamic Thread Block Launch with measured latencies.
    Dtbl,
    /// DTBL with zeroed launch latencies (DTBLI).
    DtblIdeal,
    /// DTBL with coalescing disabled: every aggregated group becomes a
    /// device kernel (the "just add KDE entries" alternative of §4.3).
    DtblNoCoalesce,
}

impl Variant {
    /// The five variants the paper's figures compare.
    pub const MAIN: [Variant; 5] = [
        Variant::Flat,
        Variant::CdpIdeal,
        Variant::DtblIdeal,
        Variant::Cdp,
        Variant::Dtbl,
    ];

    /// Every variant, including the §4.3 no-coalescing ablation. Order is
    /// the [`index`](Variant::index) order a [`CellSetup`](crate::CellSetup)
    /// stores prepared programs in.
    pub const ALL: [Variant; 6] = [
        Variant::Flat,
        Variant::Cdp,
        Variant::CdpIdeal,
        Variant::Dtbl,
        Variant::DtblIdeal,
        Variant::DtblNoCoalesce,
    ];

    /// Dense index of this variant within [`Variant::ALL`].
    pub fn index(self) -> usize {
        match self {
            Variant::Flat => 0,
            Variant::Cdp => 1,
            Variant::CdpIdeal => 2,
            Variant::Dtbl => 3,
            Variant::DtblIdeal => 4,
            Variant::DtblNoCoalesce => 5,
        }
    }

    /// Column label used in the figure tables.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Flat => "Flat",
            Variant::Cdp => "CDP",
            Variant::CdpIdeal => "CDPI",
            Variant::Dtbl => "DTBL",
            Variant::DtblIdeal => "DTBLI",
            Variant::DtblNoCoalesce => "DTBL-NC",
        }
    }

    /// Parses a figure-table [`label`](Variant::label) (e.g. `DTBL-NC`)
    /// back into its variant — the inverse used by the daemon wire
    /// protocol, where cells arrive as labels.
    pub fn from_label(label: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.label() == label)
    }

    /// Code-generation mode for the benchmark kernels.
    pub fn launch_mode(self) -> LaunchMode {
        match self {
            Variant::Flat => LaunchMode::Inline,
            Variant::Cdp | Variant::CdpIdeal => LaunchMode::Cdp,
            Variant::Dtbl | Variant::DtblIdeal | Variant::DtblNoCoalesce => LaunchMode::Dtbl,
        }
    }

    /// Applies the variant's simulator knobs to a configuration.
    pub fn configure(self, mut cfg: GpuConfig) -> GpuConfig {
        match self {
            Variant::CdpIdeal | Variant::DtblIdeal => cfg.latency = LatencyTable::ideal(),
            Variant::DtblNoCoalesce => cfg.dtbl_disable_coalescing = true,
            _ => {}
        }
        cfg
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How nested work is emitted by [`emit_dfp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchMode {
    /// Serialize the nested loop in the parent thread.
    Inline,
    /// `cudaLaunchDevice` a child kernel.
    Cdp,
    /// `cudaLaunchAggGroup` an aggregated group.
    Dtbl,
}

/// Minimum DFP size worth a dynamic launch. Below this, even the CDP and
/// DTBL variants inline the loop (the paper launches "for any detected
/// DFP with sufficient parallelism available" — one warp's worth here;
/// the measured average dynamic launch is ~40 threads, §3.1).
pub const DFP_THRESHOLD: u32 = 32;

/// Thread-block size of every child kernel, as a power of two. 32 keeps
/// dynamic launches fine-grained like the paper's measured average of
/// ~40 threads per device launch.
pub const CHILD_TB_LOG2: u32 = 5;

/// Threads per child thread block.
pub const CHILD_TB: u32 = 1 << CHILD_TB_LOG2;

/// Emits the canonical DFP pattern into a parent kernel:
///
/// ```text
/// if count >= DFP_THRESHOLD and mode is dynamic:
///     buf = cudaGetParameterBuffer()
///     buf[0] = count; buf[1..] = params
///     launch child with ceil(count / CHILD_TB) blocks
/// else:
///     for i in 0..count { inline_body(i) }
/// ```
///
/// Child kernels read `count` from parameter word 0 and `params[k]` from
/// word `k + 1`, and should start with [`child_guard`].
pub fn emit_dfp(
    b: &mut KernelBuilder,
    mode: LaunchMode,
    child: KernelId,
    count: Reg,
    params: &[Op],
    inline_body: impl FnOnce(&mut KernelBuilder, Reg),
) {
    emit_dfp_with_threshold(b, mode, child, count, DFP_THRESHOLD, params, inline_body);
}

/// [`emit_dfp`] with an application-specific launch threshold (AMR's
/// natural refinement granularity is 16 sub-cells, below the default).
pub fn emit_dfp_with_threshold(
    b: &mut KernelBuilder,
    mode: LaunchMode,
    child: KernelId,
    count: Reg,
    threshold: u32,
    params: &[Op],
    inline_body: impl FnOnce(&mut KernelBuilder, Reg),
) {
    match mode {
        LaunchMode::Inline => {
            b.for_range(Op::Imm(0), Op::Reg(count), inline_body);
        }
        LaunchMode::Cdp | LaunchMode::Dtbl => {
            let big = b.setp(CmpOp::Ge, CmpTy::U32, count, Op::Imm(threshold));
            let params: Vec<Op> = params.to_vec();
            b.if_else_(
                big,
                move |b| {
                    let buf = b.get_param_buf(1 + params.len() as u16);
                    b.st_param_word(buf, 0, Op::Reg(count));
                    for (k, p) in params.iter().enumerate() {
                        b.st_param_word(buf, k as u16 + 1, *p);
                    }
                    let biased = b.iadd(count, Op::Imm(CHILD_TB - 1));
                    let ntb = b.shru(biased, Op::Imm(CHILD_TB_LOG2));
                    match mode {
                        LaunchMode::Cdp => b.launch_device(child, Op::Reg(ntb), buf),
                        LaunchMode::Dtbl => b.launch_agg(child, Op::Reg(ntb), buf),
                        LaunchMode::Inline => unreachable!(),
                    }
                },
                move |b| {
                    b.for_range(Op::Imm(0), Op::Reg(count), inline_body);
                },
            );
        }
    }
}

/// Emits the standard child-kernel prologue: computes the global work-item
/// index, exits threads past `count` (parameter word 0), and returns the
/// index register.
pub fn child_guard(b: &mut KernelBuilder) -> Reg {
    let gtid = b.global_tid();
    let count = b.ld_param(0);
    let oob = b.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(count));
    b.if_(oob, |b| b.exit());
    gtid
}

/// Ceil-divide for host-side grid sizing.
pub fn ceil_div(a: u32, b: u32) -> u32 {
    a.div_ceil(b.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{Dim3, Inst};

    #[test]
    fn labels_round_trip_through_from_label() {
        for v in Variant::ALL {
            assert_eq!(Variant::from_label(v.label()), Some(v));
        }
        assert_eq!(Variant::from_label("FLAT"), None, "labels are exact");
    }

    #[test]
    fn variant_wiring() {
        assert_eq!(Variant::Flat.launch_mode(), LaunchMode::Inline);
        assert_eq!(Variant::Cdp.launch_mode(), LaunchMode::Cdp);
        assert_eq!(Variant::DtblNoCoalesce.launch_mode(), LaunchMode::Dtbl);
        let ideal = Variant::DtblIdeal.configure(GpuConfig::k20c());
        assert_eq!(ideal.latency.launch_device_b, 0);
        let nc = Variant::DtblNoCoalesce.configure(GpuConfig::k20c());
        assert!(nc.dtbl_disable_coalescing);
        assert_eq!(Variant::MAIN.len(), 5);
        assert_eq!(Variant::Dtbl.to_string(), "DTBL");
    }

    #[test]
    fn emit_dfp_inline_has_no_launch() {
        let mut b = KernelBuilder::new("t", Dim3::x(32), 1);
        let c = b.imm(10);
        emit_dfp(&mut b, LaunchMode::Inline, KernelId(1), c, &[], |b, i| {
            let _ = b.iadd(i, Op::Imm(1));
        });
        let k = b.build().unwrap();
        assert!(!k.insts().iter().any(Inst::is_launch));
    }

    #[test]
    fn emit_dfp_dynamic_has_both_paths() {
        for (mode, want_agg) in [(LaunchMode::Cdp, false), (LaunchMode::Dtbl, true)] {
            let mut b = KernelBuilder::new("t", Dim3::x(32), 1);
            let c = b.imm(10);
            let extra = b.imm(42);
            emit_dfp(&mut b, mode, KernelId(1), c, &[Op::Reg(extra)], |b, i| {
                let _ = b.iadd(i, Op::Imm(1));
            });
            let k = b.build().unwrap();
            let has_agg = k
                .insts()
                .iter()
                .any(|i| matches!(i, Inst::LaunchAgg { .. }));
            let has_dev = k
                .insts()
                .iter()
                .any(|i| matches!(i, Inst::LaunchDevice { .. }));
            assert_eq!(has_agg, want_agg);
            assert_eq!(has_dev, !want_agg);
            // The inline fallback loop must also be present.
            let backedge = k.insts().iter().enumerate().any(|(pc, inst)| {
                matches!(inst, Inst::Bra { pred: None, target, .. } if (*target as usize) < pc)
            });
            assert!(backedge, "small-DFP inline path missing");
            assert!(k
                .insts()
                .iter()
                .any(|i| matches!(i, Inst::GetParamBuf { words: 2, .. })));
        }
    }

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(0, 32), 1);
        assert_eq!(ceil_div(32, 32), 1);
        assert_eq!(ceil_div(33, 32), 2);
    }
}
