//! Irregular GPU benchmarks for the DTBL reproduction (Table 4 of the
//! paper) plus the synthetic datasets they run on.
//!
//! Every application is implemented three ways over identical data
//! structures: **Flat** (the nested loop serialized in each thread),
//! **CDP** (device-kernel launch per pocket of parallelism) and **DTBL**
//! (aggregated-group launch), plus the zero-launch-latency ideal variants
//! (CDPI/DTBLI) the paper uses to isolate scheduling effects.
//!
//! The entry point is [`Benchmark`]: pick one of the paper's 16
//! benchmark/input configurations, a [`Variant`], and a scale, and get
//! back a validated [`RunReport`] carrying every metric of Figures 6–11.
//! Any failure — a hang, exhausted hardware structure, or output that
//! diverges from the host reference — comes back as a typed
//! [`gpu_sim::SimError`] naming the benchmark, never a panic.
//!
//! ```no_run
//! use workloads::{Benchmark, Scale, Variant};
//!
//! let report = Benchmark::BfsCitation.run(Variant::Dtbl, Scale::Test).unwrap();
//! println!("speedup-relevant cycles: {}", report.stats.cycles);
//! ```

#![warn(missing_docs)]

pub mod apps;
mod common;
pub mod data;
mod harness;
mod report;
mod setup;

pub use common::{
    build_kernel, ceil_div, child_guard, emit_dfp, emit_dfp_with_threshold, validate_scalar,
    validate_u32, LaunchMode, Variant, CHILD_TB, DFP_THRESHOLD,
};
pub use harness::{Benchmark, Scale};
pub use report::RunReport;
pub use setup::{AppData, CellSetup};
