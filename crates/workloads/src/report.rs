//! Benchmark run reports.

use crate::common::Variant;
use gpu_sim::Stats;

/// Everything a *successful, validated* benchmark run produces. A run
/// whose output diverges from the host reference does not get a report —
/// it fails with [`SimError::ValidationFailed`](gpu_sim::SimError) naming
/// the benchmark and the first divergence, so a harness sweeping many
/// benchmarks can report which one broke and keep going.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Benchmark configuration name (e.g. `bfs_citation`).
    pub benchmark: String,
    /// Execution variant.
    pub variant: Variant,
    /// Simulator statistics for the whole run (all kernels, all host
    /// iterations).
    pub stats: Stats,
    /// The recorded event trace, when the run's
    /// [`GpuConfig::trace`](gpu_sim::GpuConfig) enabled tracing; `None`
    /// for untraced runs. Export with [`gpu_trace::export`].
    pub trace: Option<gpu_trace::TraceData>,
}
