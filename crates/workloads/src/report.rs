//! Benchmark run reports.

use crate::common::Variant;
use gpu_sim::Stats;

/// Everything one benchmark run produces: the simulator statistics (the
/// paper's metrics) plus functional validation against a host reference.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Benchmark configuration name (e.g. `bfs_citation`).
    pub benchmark: String,
    /// Execution variant.
    pub variant: Variant,
    /// Simulator statistics for the whole run (all kernels, all host
    /// iterations).
    pub stats: Stats,
    /// True when the GPU result matched the host reference exactly.
    pub validated: bool,
}

impl RunReport {
    /// Panics with context when validation failed — used by tests and the
    /// figure harnesses, where an unvalidated speedup is meaningless.
    pub fn assert_valid(&self) -> &Self {
        assert!(
            self.validated,
            "{} [{}] produced wrong results",
            self.benchmark, self.variant
        );
        self
    }
}
