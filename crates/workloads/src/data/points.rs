//! Random point clouds for the Barnes-Hut tree benchmark.

use sim_rand::{Rng, SeedableRng, StdRng};

/// 2D points in a `[0, extent) × [0, extent)` box, stored as fixed-point
/// integer coordinates (the ISA is 32-bit integer/float; fixed point keeps
/// quadrant classification exact on host and device).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointSet {
    /// x coordinates.
    pub xs: Vec<u32>,
    /// y coordinates.
    pub ys: Vec<u32>,
    /// Box extent (power of two so quadrant splits stay integral).
    pub extent: u32,
}

impl PointSet {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// Uniform random points (the paper's "Random Data Points" input for BHT).
pub fn random_points(n: u32, extent_log2: u32, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let extent = 1u32 << extent_log2;
    PointSet {
        xs: (0..n).map(|_| rng.gen_range(0..extent)).collect(),
        ys: (0..n).map(|_| rng.gen_range(0..extent)).collect(),
        extent,
    }
}

/// Clustered points: a few Gaussian-ish blobs, giving an unbalanced tree
/// (deep refinement in clusters, shallow elsewhere).
pub fn clustered_points(n: u32, extent_log2: u32, clusters: u32, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let extent = 1u32 << extent_log2;
    let centers: Vec<(u32, u32)> = (0..clusters.max(1))
        .map(|_| (rng.gen_range(0..extent), rng.gen_range(0..extent)))
        .collect();
    let spread = (extent / 16).max(1);
    let mut xs = Vec::with_capacity(n as usize);
    let mut ys = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (cx, cy) = centers[rng.gen_range(0..centers.len())];
        // Sum of two uniforms ≈ triangular; clamp into the box.
        let dx = rng.gen_range(0..spread) + rng.gen_range(0..spread);
        let dy = rng.gen_range(0..spread) + rng.gen_range(0..spread);
        xs.push((cx.wrapping_add(dx)).min(extent - 1));
        ys.push((cy.wrapping_add(dy)).min(extent - 1));
    }
    PointSet { xs, ys, extent }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_fill_the_box() {
        let p = random_points(4000, 10, 1);
        assert_eq!(p.len(), 4000);
        assert!(p.xs.iter().all(|&x| x < 1024));
        // All four quadrants populated.
        let q: Vec<usize> = (0..4)
            .map(|k| {
                (0..4000)
                    .filter(|&i| {
                        let qx = (p.xs[i] >= 512) as usize;
                        let qy = (p.ys[i] >= 512) as usize;
                        qy * 2 + qx == k
                    })
                    .count()
            })
            .collect();
        assert!(q.iter().all(|&c| c > 500), "balanced quadrants: {q:?}");
    }

    #[test]
    fn clustered_points_are_unbalanced() {
        let p = clustered_points(4000, 10, 2, 2);
        let q: Vec<usize> = (0..4)
            .map(|k| {
                (0..4000)
                    .filter(|&i| {
                        let qx = (p.xs[i] >= 512) as usize;
                        let qy = (p.ys[i] >= 512) as usize;
                        qy * 2 + qx == k
                    })
                    .count()
            })
            .collect();
        let max = *q.iter().max().unwrap();
        let min = *q.iter().min().unwrap();
        assert!(max > 4 * (min + 1), "clusters must skew quadrants: {q:?}");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_points(100, 8, 7), random_points(100, 8, 7));
        assert_ne!(random_points(100, 8, 7), random_points(100, 8, 8));
    }
}
