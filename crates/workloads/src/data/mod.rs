//! Synthetic dataset generators standing in for the paper's inputs.
//!
//! See `DESIGN.md` ("Substitutions") for the mapping from each real input
//! to its generator and why the substitution preserves the behaviour DTBL
//! responds to.

pub mod graph;
pub mod mesh;
pub mod points;
pub mod ratings;
pub mod relations;
pub mod strings;

pub use graph::CsrGraph;
