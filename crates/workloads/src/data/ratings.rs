//! MovieLens-shaped user-item ratings for the product-recommendation
//! benchmark.

use sim_rand::{Rng, SeedableRng, StdRng};

/// Ratings in CSR-by-item layout: `item_offsets[i]..item_offsets[i+1]`
/// indexes parallel arrays of user ids and integer ratings (1–5).
///
/// Item popularity is power-law-ish like MovieLens, which makes the
/// per-item rating lists the *coarse-grained* dynamically-formed
/// parallelism the paper observes for `pre` (average ≈1528 threads per
/// dynamic launch, §5.2B) — large lists, few launches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatingSet {
    /// CSR offsets per item.
    pub item_offsets: Vec<u32>,
    /// User id of each rating.
    pub users: Vec<u32>,
    /// Rating value (1–5).
    pub values: Vec<u32>,
    /// Number of users.
    pub num_users: u32,
}

impl RatingSet {
    /// Number of items.
    pub fn num_items(&self) -> u32 {
        (self.item_offsets.len() - 1) as u32
    }

    /// Number of ratings.
    pub fn num_ratings(&self) -> u32 {
        self.users.len() as u32
    }

    /// Ratings of one item as `(user, value)` pairs.
    pub fn item_ratings(&self, item: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let s = self.item_offsets[item as usize] as usize;
        let e = self.item_offsets[item as usize + 1] as usize;
        self.users[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }
}

/// Generates `n_items` items rated by `n_users` users with power-law item
/// popularity: item `i`'s expected rating count decays as `1/(i+1)^0.5`.
pub fn movielens_like(n_items: u32, num_users: u32, base_count: u32, seed: u64) -> RatingSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut item_offsets = Vec::with_capacity(n_items as usize + 1);
    let mut users = Vec::new();
    let mut values = Vec::new();
    item_offsets.push(0);
    for i in 0..n_items {
        let pop = (f64::from(base_count) / f64::from(i + 1).powf(0.5)).ceil() as u32;
        let pop = pop.max(1).min(num_users);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..pop {
            let u = rng.gen_range(0..num_users);
            if seen.insert(u) {
                users.push(u);
                values.push(rng.gen_range(1..=5));
            }
        }
        item_offsets.push(users.len() as u32);
    }
    RatingSet {
        item_offsets,
        users,
        values,
        num_users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_decays() {
        let r = movielens_like(200, 3000, 800, 1);
        let count = |i: u32| r.item_offsets[i as usize + 1] - r.item_offsets[i as usize];
        assert!(count(0) > 8 * count(150), "head items far more popular");
        assert!(r.num_ratings() > 0);
    }

    #[test]
    fn ratings_are_valid() {
        let r = movielens_like(50, 500, 100, 2);
        assert!(r.values.iter().all(|&v| (1..=5).contains(&v)));
        assert!(r.users.iter().all(|&u| u < 500));
        assert_eq!(*r.item_offsets.last().unwrap() as usize, r.users.len());
        // No duplicate user within one item.
        for i in 0..r.num_items() {
            let us: Vec<u32> = r.item_ratings(i).map(|(u, _)| u).collect();
            let mut dedup = us.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(us.len(), dedup.len(), "item {i} rated twice by a user");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            movielens_like(30, 100, 50, 9),
            movielens_like(30, 100, 50, 9)
        );
    }
}
