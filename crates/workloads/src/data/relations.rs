//! Relational tables for the hash-join benchmark.

use sim_rand::{Rng, SeedableRng, StdRng};

/// Key distribution of a join column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform keys: balanced hash buckets (the paper's `join_uniform`).
    Uniform,
    /// Gaussian-ish keys: heavily skewed buckets, severe per-thread
    /// imbalance in the flat probe loop (`join_gaussian`, which shows the
    /// second-largest warp-activity gain in Figure 6).
    Gaussian,
}

/// A pair of relations to join on their key columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinInput {
    /// Build-side keys (relation R).
    pub build_keys: Vec<u32>,
    /// Probe-side keys (relation S).
    pub probe_keys: Vec<u32>,
    /// Key domain: keys are in `[0, domain)`.
    pub domain: u32,
}

impl JoinInput {
    /// Host reference: number of matching pairs.
    pub fn host_match_count(&self) -> u64 {
        let mut hist = vec![0u64; self.domain as usize];
        for &k in &self.build_keys {
            hist[k as usize] += 1;
        }
        self.probe_keys.iter().map(|&k| hist[k as usize]).sum()
    }
}

/// Generates a join input with `n_build`/`n_probe` tuples over `domain`
/// keys.
pub fn join_input(dist: KeyDist, n_build: u32, n_probe: u32, domain: u32, seed: u64) -> JoinInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let key = |rng: &mut StdRng| -> u32 {
        match dist {
            KeyDist::Uniform => rng.gen_range(0..domain),
            KeyDist::Gaussian => {
                // Sum of 6 uniforms ≈ normal, centred on domain/2, then
                // squeezed toward the centre for a sharper peak.
                let s: u32 = (0..6).map(|_| rng.gen_range(0..domain)).sum::<u32>() / 6;
                let c = domain / 2;
                let squeezed = c as i64 + (s as i64 - c as i64) / 2;
                (squeezed.max(0) as u32).min(domain - 1)
            }
        }
    };
    JoinInput {
        build_keys: (0..n_build).map(|_| key(&mut rng)).collect(),
        probe_keys: (0..n_probe).map(|_| key(&mut rng)).collect(),
        domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_buckets_are_balanced_gaussian_skewed() {
        let u = join_input(KeyDist::Uniform, 8000, 100, 256, 1);
        let g = join_input(KeyDist::Gaussian, 8000, 100, 256, 1);
        let hist = |keys: &[u32]| {
            let mut h = vec![0u32; 256];
            for &k in keys {
                h[k as usize] += 1;
            }
            h
        };
        let hu = hist(&u.build_keys);
        let hg = hist(&g.build_keys);
        let max_u = *hu.iter().max().unwrap();
        let max_g = *hg.iter().max().unwrap();
        assert!(
            max_g > 3 * max_u,
            "gaussian hot bucket ({max_g}) must dwarf uniform ({max_u})"
        );
    }

    #[test]
    fn host_match_count_small_case() {
        let j = JoinInput {
            build_keys: vec![1, 1, 2, 5],
            probe_keys: vec![1, 2, 2, 3],
            domain: 8,
        };
        // probe 1 matches 2 builds; each probe-2 matches 1; probe 3 none.
        assert_eq!(j.host_match_count(), 2 + 1 + 1);
    }

    #[test]
    fn keys_in_domain() {
        for d in [KeyDist::Uniform, KeyDist::Gaussian] {
            let j = join_input(d, 1000, 1000, 64, 2);
            assert!(j.build_keys.iter().all(|&k| k < 64));
            assert!(j.probe_keys.iter().all(|&k| k < 64));
        }
    }
}
