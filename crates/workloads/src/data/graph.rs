//! Synthetic graph generators shaped like the paper's inputs (Table 4).
//!
//! DTBL's behaviour depends on the *degree distribution* of the input —
//! how many dynamically-formed pockets of parallelism appear and how big
//! they are — not on the specific edges. Each generator below reproduces
//! the qualitative property the paper calls out for its real counterpart:
//!
//! * [`citation`] — skewed, power-law-ish degrees (DIMACS citation
//!   network): many launches, varied sizes; CDP/DTBL help.
//! * [`usa_road`] — grid with degree ≤ 4 (USA road network): DFP "rarely
//!   occurs", so dynamic launching barely triggers (§5.2C).
//! * [`cage15_like`] — banded matrix with moderate, uniform degrees and
//!   *distributed* neighbour lists (cage15): memory irregularity
//!   dominates; dynamic launches restore coalescing (§5.2A).
//! * [`graph500_logn`] — near-uniform degree ("relatively small variance
//!   in vertex degree", §5.2A): flat is already balanced; CDP/DTBL can
//!   slightly hurt.
//! * [`flight`] — hub-and-spoke (global flight network): almost all
//!   vertices have tiny degree, a few hubs are huge.

use sim_rand::{Rng, SeedableRng, StdRng};

/// A directed graph in Compressed Sparse Row form with optional edge
/// weights, the layout all graph benchmarks operate on (and the one that
/// makes child-kernel neighbour loops coalesce, §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `row_offsets[v]..row_offsets[v+1]` indexes `col_indices`.
    pub row_offsets: Vec<u32>,
    /// Neighbour ids.
    pub col_indices: Vec<u32>,
    /// Per-edge weights (same length as `col_indices`); 1 when absent.
    pub weights: Option<Vec<u32>>,
}

impl CsrGraph {
    /// Builds a CSR graph from an adjacency list, sorting and
    /// deduplicating each neighbour list.
    pub fn from_adjacency(mut adj: Vec<Vec<u32>>) -> Self {
        let mut row_offsets = Vec::with_capacity(adj.len() + 1);
        let mut col_indices = Vec::new();
        row_offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            col_indices.extend_from_slice(list);
            row_offsets.push(col_indices.len() as u32);
        }
        CsrGraph {
            row_offsets,
            col_indices,
            weights: None,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.row_offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u32 {
        self.col_indices.len() as u32
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let s = self.row_offsets[v as usize] as usize;
        let e = self.row_offsets[v as usize + 1] as usize;
        &self.col_indices[s..e]
    }

    /// Weight of edge index `e` (1 if unweighted).
    pub fn weight_at(&self, e: usize) -> u32 {
        self.weights.as_ref().map_or(1, |w| w[e])
    }

    /// Attaches deterministic pseudo-random weights in `[1, max_w]`.
    pub fn with_random_weights(mut self, max_w: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        self.weights = Some(
            (0..self.col_indices.len())
                .map(|_| rng.gen_range(1..=max_w))
                .collect(),
        );
        self
    }

    /// Population variance of the degree distribution (used by tests to
    /// check each generator has the shape the paper relies on).
    pub fn degree_variance(&self) -> f64 {
        let n = self.num_vertices() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.num_edges() as f64 / n;
        let ss: f64 = (0..self.num_vertices())
            .map(|v| {
                let d = self.degree(v) as f64 - mean;
                d * d
            })
            .sum();
        ss / n
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

/// Power-law citation-style network: vertex `v` cites earlier vertices
/// with preferential attachment, giving a skewed in/out-degree mix.
///
/// Degrees are capped at `16 × mean_refs`: the paper's flat BFS baseline
/// uses Merrill-style block/warp-level expansion that tolerates extreme
/// hubs, while this reproduction's flat variants serialize the neighbour
/// loop per thread. Capping the tail keeps the flat baseline comparable
/// without changing the skew that drives dynamic launching (documented in
/// DESIGN.md).
pub fn citation(n: u32, mean_refs: u32, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = (16 * mean_refs) as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    // Endpoint pool for preferential attachment.
    let mut pool: Vec<u32> = vec![0];
    for v in 1..n {
        // Sample a skewed number of references.
        let r: f64 = rng.gen::<f64>();
        let refs = ((mean_refs as f64) * (1.0 / (1.0 - 0.75 * r) - 0.9)).round() as u32;
        let refs = refs.clamp(1, 4 * mean_refs).min(v);
        for _ in 0..refs {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v && adj[t as usize].len() < cap && adj[v as usize].len() < cap {
                adj[v as usize].push(t);
                // Cited vertices become more likely to be cited again and
                // also link back occasionally (undirected-ish traversal).
                adj[t as usize].push(v);
                pool.push(t);
            }
        }
        pool.push(v);
    }
    CsrGraph::from_adjacency(adj)
}

/// Grid road network of `w × h` intersections; degree ≤ 4.
pub fn usa_road(w: u32, h: u32) -> CsrGraph {
    let idx = |x: u32, y: u32| y * w + x;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); (w * h) as usize];
    for y in 0..h {
        for x in 0..w {
            let v = idx(x, y) as usize;
            if x + 1 < w {
                adj[v].push(idx(x + 1, y));
                adj[idx(x + 1, y) as usize].push(v as u32);
            }
            if y + 1 < h {
                adj[v].push(idx(x, y + 1));
                adj[idx(x, y + 1) as usize].push(v as u32);
            }
        }
    }
    CsrGraph::from_adjacency(adj)
}

/// Banded sparse-matrix graph like cage15: every vertex connects to a
/// moderate, near-uniform number of neighbours spread across a wide band,
/// so neighbour lists of *consecutive vertices* are far apart in memory.
/// Structurally symmetric (like the cage DNA-electrophoresis matrices),
/// which the coloring benchmark requires; `deg` counts generated arcs per
/// vertex, so the symmetric degree is roughly `2 * deg`.
pub fn cage15_like(n: u32, band: u32, deg: u32, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for v in 0..n {
        let d = deg + rng.gen_range(0..=2u32);
        for _ in 0..d {
            let span = band.min(n - 1).max(1);
            let off = rng.gen_range(0..=2 * span) as i64 - i64::from(span);
            let t = (i64::from(v) + off).rem_euclid(i64::from(n)) as u32;
            if t != v {
                adj[v as usize].push(t);
                adj[t as usize].push(v);
            }
        }
    }
    CsrGraph::from_adjacency(adj)
}

/// Graph500-logn20-like graph with near-uniform degree (small degree
/// variance — the property §5.2A attributes to it).
pub fn graph500_logn(n: u32, deg: u32, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for v in 0..n {
        for _ in 0..deg {
            let t = rng.gen_range(0..n);
            if t != v {
                adj[v as usize].push(t);
                adj[t as usize].push(v);
            }
        }
    }
    CsrGraph::from_adjacency(adj)
}

/// Hub-and-spoke flight network: `hubs` airports with high degree, the
/// remaining `n - hubs` with 1–3 connections (almost all to hubs).
pub fn flight(n: u32, hubs: u32, seed: u64) -> CsrGraph {
    let hubs = hubs.max(1).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    // Hubs form a clique-ish core.
    for a in 0..hubs {
        for b in (a + 1)..hubs {
            if rng.gen_bool(0.5) {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
    }
    for v in hubs..n {
        let links = rng.gen_range(1..=3);
        for _ in 0..links {
            let h = rng.gen_range(0..hubs);
            adj[v as usize].push(h);
            adj[h as usize].push(v);
        }
    }
    CsrGraph::from_adjacency(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_construction_sorts_and_dedups() {
        let g = CsrGraph::from_adjacency(vec![vec![2, 1, 2], vec![0], vec![]]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn citation_is_skewed() {
        let g = citation(2000, 4, 1);
        assert!(g.mean_degree() > 1.0);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(
            f64::from(max_deg) > 8.0 * g.mean_degree(),
            "power law needs heavy hubs: max {max_deg} vs mean {}",
            g.mean_degree()
        );
    }

    #[test]
    fn road_grid_has_degree_at_most_four() {
        let g = usa_road(20, 15);
        assert_eq!(g.num_vertices(), 300);
        assert!((0..300).all(|v| g.degree(v) <= 4));
        // Corner has exactly 2.
        assert_eq!(g.degree(0), 2);
        // Interior has 4.
        assert_eq!(g.degree(21), 4);
    }

    #[test]
    fn graph500_degree_variance_is_smaller_than_citation() {
        let c = citation(2000, 4, 7);
        let g = graph500_logn(2000, 8, 7);
        // Normalize by mean² (coefficient of variation squared).
        let cv_c = c.degree_variance() / (c.mean_degree() * c.mean_degree());
        let cv_g = g.degree_variance() / (g.mean_degree() * g.mean_degree());
        assert!(
            cv_g < cv_c / 2.0,
            "graph500 must be far more uniform: {cv_g:.3} vs citation {cv_c:.3}"
        );
    }

    #[test]
    fn flight_is_mostly_low_degree() {
        let g = flight(3000, 20, 3);
        let low = (20..3000).filter(|v| g.degree(*v) <= 4).count();
        assert!(low as f64 > 0.9 * 2980.0, "spokes must have tiny degree");
        let hub_max = (0..20).map(|v| g.degree(v)).max().unwrap();
        assert!(hub_max > 100, "hubs must be huge, got {hub_max}");
    }

    #[test]
    fn cage15_band_is_respected_and_uniform() {
        let n = 4000;
        let band = 500;
        let g = cage15_like(n, band, 8, 5);
        for v in (0..n).step_by(97) {
            for &t in g.neighbors(v) {
                let d = (i64::from(v) - i64::from(t)).rem_euclid(i64::from(n));
                let dist = d.min(i64::from(n) - d);
                assert!(dist <= i64::from(band), "edge {v}->{t} outside band");
            }
        }
        let cv = g.degree_variance() / (g.mean_degree() * g.mean_degree());
        assert!(cv < 0.2, "cage-like degrees are near-uniform, cv² = {cv}");
    }

    #[test]
    fn weights_are_deterministic_and_in_range() {
        let a = citation(500, 3, 2).with_random_weights(10, 9);
        let b = citation(500, 3, 2).with_random_weights(10, 9);
        assert_eq!(a, b, "same seed, same graph");
        let w = a.weights.as_ref().unwrap();
        assert!(w.iter().all(|&x| (1..=10).contains(&x)));
        assert_eq!(a.weight_at(0), w[0]);
    }
}
