//! String/packet corpora for the regular-expression benchmark.

use sim_rand::{Rng, SeedableRng, StdRng};

/// Alphabet size for the synthetic corpora (small so DFA tables stay
/// compact on the device).
pub const ALPHABET: u32 = 8;

/// A batch of "packets", each containing a variable number of segments;
/// segments are flat symbol sequences. The per-packet segment count is
/// the dynamically-formed parallelism the REGX kernels exploit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketSet {
    /// Symbols of all segments, concatenated (values `< ALPHABET`).
    pub symbols: Vec<u32>,
    /// Per-segment `(offset, len)` into `symbols`.
    pub segments: Vec<(u32, u32)>,
    /// Per-packet `(first_segment, segment_count)`.
    pub packets: Vec<(u32, u32)>,
}

impl PacketSet {
    /// Number of packets.
    pub fn num_packets(&self) -> u32 {
        self.packets.len() as u32
    }

    /// Number of segments across all packets.
    pub fn num_segments(&self) -> u32 {
        self.segments.len() as u32
    }
}

/// DARPA-like traffic: most packets carry few segments, a minority carry
/// many (sessions); segment contents embed the pattern `0 1 2` with low
/// probability, like rare intrusion signatures.
pub fn darpa_like(n_packets: u32, seed: u64) -> PacketSet {
    gen_packets(n_packets, seed, true)
}

/// Random string collection: many segments per packet, uniform symbols —
/// the launch-dense `regx_string` configuration (highest DFP occurrence
/// in the paper, §5.2B).
pub fn random_strings(n_packets: u32, seed: u64) -> PacketSet {
    gen_packets(n_packets, seed, false)
}

fn gen_packets(n_packets: u32, seed: u64, darpa: bool) -> PacketSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut symbols = Vec::new();
    let mut segments = Vec::new();
    let mut packets = Vec::with_capacity(n_packets as usize);
    for _ in 0..n_packets {
        let nseg = if darpa {
            // Mostly small, occasionally large sessions.
            if rng.gen_bool(0.85) {
                rng.gen_range(1..6)
            } else {
                rng.gen_range(16..64)
            }
        } else {
            rng.gen_range(24..96)
        };
        let first = segments.len() as u32;
        for _ in 0..nseg {
            // Random strings are short (launch-dense, little work per
            // launch); DARPA payload segments are longer.
            let len = if darpa {
                rng.gen_range(8..40u32)
            } else {
                rng.gen_range(6..16u32)
            };
            let off = symbols.len() as u32;
            for _ in 0..len {
                symbols.push(rng.gen_range(0..ALPHABET));
            }
            if darpa && rng.gen_bool(0.05) {
                // Implant the signature somewhere in the segment.
                let pos = rng.gen_range(0..len.saturating_sub(3).max(1));
                let base = (off + pos) as usize;
                symbols[base] = 0;
                symbols[base + 1] = 1;
                symbols[base + 2] = 2;
            }
            segments.push((off, len));
        }
        packets.push((first, nseg));
    }
    PacketSet {
        symbols,
        segments,
        packets,
    }
}

/// A DFA over the synthetic alphabet matching the signature `0 1 2`
/// anywhere in a segment (the classic `.*abc.*` pattern). Row-major
/// `table[state * ALPHABET + symbol]`; state 3 is accepting/absorbing.
pub fn signature_dfa() -> (Vec<u32>, u32, u32) {
    let states = 4u32;
    let mut table = vec![0u32; (states * ALPHABET) as usize];
    for sym in 0..ALPHABET {
        // From state 0: '0' advances, everything else stays.
        table[sym as usize] = u32::from(sym == 0);
        // State 1: '1' advances, '0' keeps the prefix, else reset.
        table[(ALPHABET + sym) as usize] = match sym {
            1 => 2,
            0 => 1,
            _ => 0,
        };
        // State 2: '2' accepts, '0' restarts the prefix, else reset.
        table[(2 * ALPHABET + sym) as usize] = match sym {
            2 => 3,
            0 => 1,
            _ => 0,
        };
        // State 3: absorbing accept.
        table[(3 * ALPHABET + sym) as usize] = 3;
    }
    (table, states, 3)
}

/// Host reference: does the DFA accept (reach the accepting state on) the
/// segment?
pub fn host_match(table: &[u32], accept: u32, symbols: &[u32]) -> bool {
    let mut s = 0u32;
    for &sym in symbols {
        s = table[(s * ALPHABET + sym) as usize];
        if s == accept {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfa_matches_signature() {
        let (t, _, acc) = signature_dfa();
        assert!(host_match(&t, acc, &[5, 0, 1, 2, 7]));
        assert!(host_match(&t, acc, &[0, 0, 1, 2]));
        assert!(!host_match(&t, acc, &[0, 1, 0, 2]));
        assert!(!host_match(&t, acc, &[2, 1, 0]));
        assert!(host_match(&t, acc, &[0, 1, 2]));
        assert!(!host_match(&t, acc, &[]));
    }

    #[test]
    fn packets_are_consistent() {
        for p in [darpa_like(200, 3), random_strings(50, 3)] {
            let mut seg_total = 0;
            for &(first, count) in &p.packets {
                assert_eq!(first, seg_total, "segments are packet-contiguous");
                seg_total += count;
            }
            assert_eq!(seg_total, p.num_segments());
            for &(off, len) in &p.segments {
                assert!((off + len) as usize <= p.symbols.len());
            }
            assert!(p.symbols.iter().all(|&s| s < ALPHABET));
        }
    }

    #[test]
    fn random_strings_have_more_segments_per_packet() {
        let d = darpa_like(300, 1);
        let r = random_strings(300, 1);
        let avg_d = d.num_segments() as f64 / d.num_packets() as f64;
        let avg_r = r.num_segments() as f64 / r.num_packets() as f64;
        assert!(avg_r > 2.0 * avg_d, "random: {avg_r:.1}, darpa: {avg_d:.1}");
    }

    #[test]
    fn darpa_contains_some_signatures() {
        let (t, _, acc) = signature_dfa();
        let p = darpa_like(300, 5);
        let hits = p
            .segments
            .iter()
            .filter(|&&(off, len)| {
                host_match(&t, acc, &p.symbols[off as usize..(off + len) as usize])
            })
            .count();
        assert!(hits > 0, "implanted signatures must be findable");
        assert!(hits < p.segments.len() / 2, "signatures must stay rare");
    }
}
