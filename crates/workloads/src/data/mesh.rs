//! Scalar fields driving adaptive mesh refinement.
//!
//! The paper's AMR input is a combustion simulation ("Thermodynamic
//! states in explosion fields"): a mostly-smooth field with sharp,
//! localized fronts — exactly the shape that makes refinement deep in a
//! few places and absent elsewhere (severe per-thread imbalance, the
//! largest warp-activity gain in Figure 6: +45.3%).

use sim_rand::{Rng, SeedableRng, StdRng};

/// A square scalar field sampled on a `size × size` grid of u32 values
/// (fixed point, 0..=1000).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalarField {
    /// Grid side length.
    pub size: u32,
    /// Row-major samples, `size * size` entries, each in `0..=1000`.
    pub values: Vec<u32>,
}

impl ScalarField {
    /// Sample at `(x, y)`, clamped to the grid.
    pub fn at(&self, x: u32, y: u32) -> u32 {
        let x = x.min(self.size - 1);
        let y = y.min(self.size - 1);
        self.values[(y * self.size + x) as usize]
    }
}

/// Combustion-like field: smooth background plus a handful of sharp
/// circular fronts (flame kernels).
pub fn combustion_field(size: u32, fronts: u32, seed: u64) -> ScalarField {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(i64, i64, i64)> = (0..fronts.max(1))
        .map(|_| {
            (
                rng.gen_range(0..size) as i64,
                rng.gen_range(0..size) as i64,
                rng.gen_range((size / 10).max(2)..(size / 3).max(3)) as i64,
            )
        })
        .collect();
    let mut values = Vec::with_capacity((size * size) as usize);
    for y in 0..size as i64 {
        for x in 0..size as i64 {
            // Max over fronts of a ring profile: high near each front
            // radius, low inside and outside.
            let mut v: i64 = 50; // quiescent background
            for &(cx, cy, r) in &centers {
                let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                let d = (d2 as f64).sqrt() as i64;
                let band = (r / 6).max(1);
                let dist_to_front = (d - r).abs();
                if dist_to_front < 3 * band {
                    let peak = 1000 - 900 * dist_to_front / (3 * band);
                    v = v.max(peak);
                }
            }
            values.push(v.clamp(0, 1000) as u32);
        }
    }
    ScalarField { size, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_has_sharp_fronts_and_quiet_background() {
        let f = combustion_field(128, 3, 1);
        let hot = f.values.iter().filter(|&&v| v > 700).count();
        let quiet = f.values.iter().filter(|&&v| v <= 100).count();
        let total = f.values.len();
        assert!(hot > 0, "fronts must exist");
        assert!(
            hot < total / 4,
            "fronts must be localized: {hot}/{total} hot"
        );
        assert!(quiet > total / 4, "background must dominate");
    }

    #[test]
    fn values_bounded_and_deterministic() {
        let a = combustion_field(64, 2, 5);
        assert!(a.values.iter().all(|&v| v <= 1000));
        assert_eq!(a, combustion_field(64, 2, 5));
        assert_eq!(a.at(1000, 1000), a.at(63, 63), "clamped sampling");
    }
}
