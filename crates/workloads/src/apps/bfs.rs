//! Breadth-first search with per-vertex neighbour expansion.
//!
//! Level-synchronous frontier BFS (Merrill et al.\[23\] is the paper's
//! flat baseline). Each frontier thread owns one vertex; the neighbour
//! loop over its (data-dependent) degree is the dynamically-formed
//! parallelism. The flat variant serializes it per thread; CDP launches a
//! `bfs_expand` device kernel per sufficiently large vertex; DTBL
//! launches the same expansion as an aggregated group, which coalesces to
//! the resident `bfs_expand` kernel (the Figure 2b shape).

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp, validate_u32, Variant};
use crate::data::CsrGraph;
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};

const PARENT_TB: u32 = 128;
const INF: u32 = u32::MAX;

/// Parameter words of the `bfs_level` parent kernel.
const P_ROW: u16 = 0;
const P_COL: u16 = 1;
const P_DIST: u16 = 2;
const P_FIN: u16 = 3;
const P_FOUT: u16 = 4;
const P_CNT: u16 = 5;
const P_NF: u16 = 6;
const P_NEXT: u16 = 7;

pub(crate) fn build_program(variant: Variant) -> Result<(Program, KernelId, KernelId), SimError> {
    let mut prog = Program::new();

    // Child: expand `count` neighbours starting at edge address `edges`;
    // params: [count, edge_addr, dist, fout, cnt, next_level].
    let mut cb = KernelBuilder::new("bfs_expand", Dim3::x(crate::common::CHILD_TB), 6);
    let i = child_guard(&mut cb);
    let edges = cb.ld_param(1);
    let dist = cb.ld_param(2);
    let fout = cb.ld_param(3);
    let cnt = cb.ld_param(4);
    let next = cb.ld_param(5);
    let ea = cb.mad(i, Op::Imm(4), Op::Reg(edges));
    let u = cb.ld(Space::Global, ea, 0);
    let da = cb.mad(u, Op::Imm(4), Op::Reg(dist));
    let inf = cb.imm(INF);
    let old = cb.atom_cas(Space::Global, da, 0, inf, Op::Reg(next));
    let won = cb.setp(CmpOp::Eq, CmpTy::U32, old, Op::Imm(INF));
    cb.if_(won, |b| {
        let pos = b.atom(AtomOp::Add, Space::Global, cnt, 0, Op::Imm(1));
        let fa = b.mad(pos, Op::Imm(4), Op::Reg(fout));
        b.st(Space::Global, fa, 0, Op::Reg(u));
    });
    let child = prog.add(build_kernel(cb)?);

    // Parent: one thread per frontier vertex.
    let mut pb = KernelBuilder::new("bfs_level", Dim3::x(PARENT_TB), 8);
    let gtid = pb.global_tid();
    let nf = pb.ld_param(P_NF);
    let oob = pb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nf));
    pb.if_(oob, |b| b.exit());
    let row = pb.ld_param(P_ROW);
    let col = pb.ld_param(P_COL);
    let dist = pb.ld_param(P_DIST);
    let fin = pb.ld_param(P_FIN);
    let fout = pb.ld_param(P_FOUT);
    let cnt = pb.ld_param(P_CNT);
    let next = pb.ld_param(P_NEXT);
    let va = pb.mad(gtid, Op::Imm(4), Op::Reg(fin));
    let v = pb.ld(Space::Global, va, 0);
    let ra = pb.mad(v, Op::Imm(4), Op::Reg(row));
    let start = pb.ld(Space::Global, ra, 0);
    let end = pb.ld(Space::Global, ra, 4);
    let deg = pb.isub(end, Op::Reg(start));
    let edge_addr = pb.mad(start, Op::Imm(4), Op::Reg(col));
    emit_dfp(
        &mut pb,
        variant.launch_mode(),
        child,
        deg,
        &[
            Op::Reg(edge_addr),
            Op::Reg(dist),
            Op::Reg(fout),
            Op::Reg(cnt),
            Op::Reg(next),
        ],
        |b, i| {
            let ea = b.mad(i, Op::Imm(4), Op::Reg(edge_addr));
            let u = b.ld(Space::Global, ea, 0);
            let da = b.mad(u, Op::Imm(4), Op::Reg(dist));
            let inf = b.imm(INF);
            let old = b.atom_cas(Space::Global, da, 0, inf, Op::Reg(next));
            let won = b.setp(CmpOp::Eq, CmpTy::U32, old, Op::Imm(INF));
            b.if_(won, |b| {
                let pos = b.atom(AtomOp::Add, Space::Global, cnt, 0, Op::Imm(1));
                let fa = b.mad(pos, Op::Imm(4), Op::Reg(fout));
                b.st(Space::Global, fa, 0, Op::Reg(u));
            });
        },
    );
    let parent = prog.add(build_kernel(pb)?);
    Ok((prog, parent, child))
}

/// Host-side reference BFS.
pub fn host_bfs(g: &CsrGraph, source: u32) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut dist = vec![INF; n];
    let mut q = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u as usize] == INF {
                dist[u as usize] = dist[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Runs BFS from `source` on the simulator and validates distances
/// against [`host_bfs`].
///
/// # Errors
///
/// Any [`SimError`] from the simulation, or
/// [`SimError::ValidationFailed`] when the device distances diverge from
/// the host reference.
pub fn run(
    name: &str,
    g: &CsrGraph,
    source: u32,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, parent, _) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, g, source, parent, variant)
}

/// Executes the frontier loop on an already-bound `gpu` (fresh or
/// warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    g: &CsrGraph,
    source: u32,
    parent: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let n = g.num_vertices();

    let row = gpu.malloc((n + 1) * 4)?;
    let col = gpu.malloc(g.num_edges().max(1) * 4)?;
    let dist = gpu.malloc(n * 4)?;
    let f_a = gpu.malloc(n * 4)?;
    let f_b = gpu.malloc(n * 4)?;
    let cnt = gpu.malloc(4)?;

    gpu.mem_mut().write_slice_u32(row, &g.row_offsets);
    gpu.mem_mut().write_slice_u32(col, &g.col_indices);
    gpu.mem_mut().write_slice_u32(dist, &vec![INF; n as usize]);
    gpu.mem_mut().write_u32(dist + source * 4, 0);
    gpu.mem_mut().write_u32(f_a, source);

    let mut frontier = (f_a, f_b);
    let mut nf = 1u32;
    let mut level = 0u32;
    while nf > 0 && level <= n {
        gpu.mem_mut().write_u32(cnt, 0);
        gpu.launch(
            parent,
            ceil_div(nf, PARENT_TB),
            &[row, col, dist, frontier.0, frontier.1, cnt, nf, level + 1],
            0,
        )?;
        gpu.run_to_idle()?;
        nf = gpu.mem().read_u32(cnt);
        frontier = (frontier.1, frontier.0);
        level += 1;
    }

    let got = gpu.mem().read_vec_u32(dist, n as usize);
    let want = host_bfs(g, source);
    validate_u32(name, "dist", &got, &want)?;
    let stats = gpu.stats().clone();
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats,
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::graph;

    fn small_cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    #[test]
    fn flat_bfs_is_correct_on_citation() -> Result<(), SimError> {
        let g = graph::citation(400, 3, 1);
        let r = run("bfs_test", &g, 0, Variant::Flat, small_cfg())?;
        assert!(r.stats.cycles > 0);
        assert_eq!(r.stats.dyn_launches(), 0, "flat never launches");
        Ok(())
    }

    #[test]
    fn cdp_and_dtbl_bfs_are_correct() -> Result<(), SimError> {
        let g = graph::citation(400, 3, 2);
        for v in [Variant::Cdp, Variant::Dtbl] {
            let r = run("bfs_test", &g, 0, v, small_cfg())?;
            assert!(
                r.stats.dyn_launches() > 0,
                "{v}: skewed graph must trigger dynamic launches"
            );
        }
        Ok(())
    }

    #[test]
    fn road_grid_rarely_launches() -> Result<(), SimError> {
        let g = graph::usa_road(16, 16);
        let r = run("bfs_road", &g, 0, Variant::Dtbl, small_cfg())?;
        // Degree ≤ 4 < threshold: no DFP big enough to launch (§5.2C).
        assert_eq!(r.stats.dyn_launches(), 0);
        Ok(())
    }

    #[test]
    fn dtbl_coalesces_on_skewed_graph() -> Result<(), SimError> {
        let g = graph::citation(2_000, 6, 3);
        let r = run("bfs_cit", &g, 0, Variant::Dtbl, small_cfg())?;
        assert!(r.stats.dyn_launches() > 10, "skew must launch");
        // Early launches fall back (the eligible kernel is not resident
        // yet — the paper's "mismatches typically occur early"); once the
        // expansion kernel lands in the distributor, groups coalesce.
        assert!(
            r.stats.agg_coalesced > 0,
            "later groups must coalesce, rate {}",
            r.stats.match_rate()
        );
        Ok(())
    }

    #[test]
    fn disconnected_vertices_stay_unreached() -> Result<(), SimError> {
        // Two components: BFS from 0 must leave the other at INF.
        let g = CsrGraph::from_adjacency(vec![vec![1], vec![0], vec![3], vec![2]]);
        run("bfs_cc", &g, 0, Variant::Flat, small_cfg())?;
        Ok(())
    }
}
