//! Greedy graph coloring (Jones–Plassmann style, after Cohen &
//! Castonguay\[10\]).
//!
//! Rounds of two kernels: `clr_check` decides, per uncolored vertex,
//! whether it is a local maximum of a random priority among its uncolored
//! neighbours (the neighbour scan is the dynamically-formed parallelism);
//! `clr_assign` colors the winners with the round number and builds the
//! next round's worklist. Balanced-degree inputs (`graph500`, `cage15`)
//! make the flat variant already well balanced, which is why the paper
//! sees little or negative benefit there (§5.2A).

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp, validate_u32, Variant};
use crate::data::CsrGraph;
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};
use sim_rand::{Rng, SeedableRng, StdRng};

const PARENT_TB: u32 = 128;
const UNCOLORED: u32 = u32::MAX;

pub(crate) fn build_program(variant: Variant) -> Result<(Program, KernelId, KernelId), SimError> {
    let mut prog = Program::new();

    // Child: scan `count` neighbours of v; if any uncolored neighbour has
    // higher (priority, id), set v's loser flag.
    // Params: [count, edge_addr, colors, prios, flag_addr, pv, v].
    let mut cb = KernelBuilder::new("clr_scan", Dim3::x(crate::common::CHILD_TB), 7);
    let i = child_guard(&mut cb);
    let edges = cb.ld_param(1);
    let colors = cb.ld_param(2);
    let prios = cb.ld_param(3);
    let flag_addr = cb.ld_param(4);
    let pv = cb.ld_param(5);
    let v = cb.ld_param(6);
    emit_scan(&mut cb, i, edges, colors, prios, flag_addr, pv, v);
    let child = prog.add(build_kernel(cb)?);

    // Check kernel: one thread per worklist vertex.
    // Params: [row, col, colors, prios, flags, wl, nwl].
    let mut kb = KernelBuilder::new("clr_check", Dim3::x(PARENT_TB), 7);
    let gtid = kb.global_tid();
    let nwl = kb.ld_param(6);
    let oob = kb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nwl));
    kb.if_(oob, |b| b.exit());
    let row = kb.ld_param(0);
    let col = kb.ld_param(1);
    let colors = kb.ld_param(2);
    let prios = kb.ld_param(3);
    let flags = kb.ld_param(4);
    let wl = kb.ld_param(5);
    let va = kb.mad(gtid, Op::Imm(4), Op::Reg(wl));
    let v = kb.ld(Space::Global, va, 0);
    let fa = kb.mad(v, Op::Imm(4), Op::Reg(flags));
    kb.st(Space::Global, fa, 0, Op::Imm(0));
    let ra = kb.mad(v, Op::Imm(4), Op::Reg(row));
    let start = kb.ld(Space::Global, ra, 0);
    let end = kb.ld(Space::Global, ra, 4);
    let deg = kb.isub(end, Op::Reg(start));
    let edge_addr = kb.mad(start, Op::Imm(4), Op::Reg(col));
    let pa = kb.mad(v, Op::Imm(4), Op::Reg(prios));
    let pv = kb.ld(Space::Global, pa, 0);
    emit_dfp(
        &mut kb,
        variant.launch_mode(),
        child,
        deg,
        &[
            Op::Reg(edge_addr),
            Op::Reg(colors),
            Op::Reg(prios),
            Op::Reg(fa),
            Op::Reg(pv),
            Op::Reg(v),
        ],
        |b, i| {
            emit_scan(b, i, edge_addr, colors, prios, fa, pv, v);
        },
    );
    let check = prog.add(build_kernel(kb)?);

    // Assign kernel (flat in every variant): winners take color `round`,
    // losers re-enter the worklist.
    // Params: [colors, flags, wl_in, wl_out, cnt, nwl, round].
    let mut ab = KernelBuilder::new("clr_assign", Dim3::x(PARENT_TB), 7);
    let gtid = ab.global_tid();
    let nwl = ab.ld_param(5);
    let oob = ab.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nwl));
    ab.if_(oob, |b| b.exit());
    let colors = ab.ld_param(0);
    let flags = ab.ld_param(1);
    let wl_in = ab.ld_param(2);
    let wl_out = ab.ld_param(3);
    let cnt = ab.ld_param(4);
    let round = ab.ld_param(6);
    let va = ab.mad(gtid, Op::Imm(4), Op::Reg(wl_in));
    let v = ab.ld(Space::Global, va, 0);
    let fa = ab.mad(v, Op::Imm(4), Op::Reg(flags));
    let lost = ab.ld(Space::Global, fa, 0);
    let won = ab.setp(CmpOp::Eq, CmpTy::U32, lost, Op::Imm(0));
    ab.if_else_(
        won,
        |b| {
            let ca = b.mad(v, Op::Imm(4), Op::Reg(colors));
            b.st(Space::Global, ca, 0, Op::Reg(round));
        },
        |b| {
            let pos = b.atom(AtomOp::Add, Space::Global, cnt, 0, Op::Imm(1));
            let oa = b.mad(pos, Op::Imm(4), Op::Reg(wl_out));
            b.st(Space::Global, oa, 0, Op::Reg(v));
        },
    );
    let assign = prog.add(build_kernel(ab)?);
    Ok((prog, check, assign))
}

/// Emits the neighbour-priority check for neighbour index `i`.
#[allow(clippy::too_many_arguments)]
fn emit_scan(
    b: &mut KernelBuilder,
    i: gpu_isa::Reg,
    edges: gpu_isa::Reg,
    colors: gpu_isa::Reg,
    prios: gpu_isa::Reg,
    flag_addr: gpu_isa::Reg,
    pv: gpu_isa::Reg,
    v: gpu_isa::Reg,
) {
    let ea = b.mad(i, Op::Imm(4), Op::Reg(edges));
    let u = b.ld(Space::Global, ea, 0);
    let ca = b.mad(u, Op::Imm(4), Op::Reg(colors));
    let cu = b.ld(Space::Global, ca, 0);
    let uncolored = b.setp(CmpOp::Eq, CmpTy::U32, cu, Op::Imm(UNCOLORED));
    let pa = b.mad(u, Op::Imm(4), Op::Reg(prios));
    let pu = b.ld(Space::Global, pa, 0);
    let gt = b.setp(CmpOp::Gt, CmpTy::U32, pu, Op::Reg(pv));
    let eq = b.setp(CmpOp::Eq, CmpTy::U32, pu, Op::Reg(pv));
    let idgt = b.setp(CmpOp::Gt, CmpTy::U32, u, Op::Reg(v));
    let tie = b.pand(eq, idgt);
    let wins = b.por(gt, tie);
    let loses = b.pand(uncolored, wins);
    b.if_(loses, |b| {
        b.st(Space::Global, flag_addr, 0, Op::Imm(1));
    });
}

/// Host reference implementing the identical Jones–Plassmann rounds.
pub fn host_coloring(g: &CsrGraph, prios: &[u32]) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut colors = vec![UNCOLORED; n];
    let mut wl: Vec<u32> = (0..n as u32).collect();
    let mut round = 0u32;
    while !wl.is_empty() {
        let mut winners = Vec::new();
        let mut losers = Vec::new();
        for &v in &wl {
            let pv = prios[v as usize];
            let lost = g.neighbors(v).iter().any(|&u| {
                colors[u as usize] == UNCOLORED
                    && (prios[u as usize] > pv || (prios[u as usize] == pv && u > v))
            });
            if lost {
                losers.push(v);
            } else {
                winners.push(v);
            }
        }
        for v in winners {
            colors[v as usize] = round;
        }
        wl = losers;
        round += 1;
    }
    colors
}

/// True when no two adjacent vertices share a color and all are colored.
pub fn is_proper_coloring(g: &CsrGraph, colors: &[u32]) -> bool {
    (0..g.num_vertices()).all(|v| {
        colors[v as usize] != UNCOLORED
            && g.neighbors(v)
                .iter()
                .all(|&u| u == v || colors[u as usize] != colors[v as usize])
    })
}

/// Runs graph coloring and validates against the host reference.
pub fn run(
    name: &str,
    g: &CsrGraph,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, check, assign) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, g, check, assign, variant)
}

/// Executes the coloring rounds on an already-bound `gpu` (fresh or
/// warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    g: &CsrGraph,
    check: KernelId,
    assign: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(0xC01);
    let prios: Vec<u32> = (0..n).map(|_| rng.gen()).collect();

    let row = gpu.malloc((n + 1) * 4)?;
    let col = gpu.malloc(g.num_edges().max(1) * 4)?;
    let colors = gpu.malloc(n * 4)?;
    let pri = gpu.malloc(n * 4)?;
    let flags = gpu.malloc(n * 4)?;
    let wl_a = gpu.malloc(n * 4)?;
    let wl_b = gpu.malloc(n * 4)?;
    let cnt = gpu.malloc(4)?;

    gpu.mem_mut().write_slice_u32(row, &g.row_offsets);
    gpu.mem_mut().write_slice_u32(col, &g.col_indices);
    gpu.mem_mut()
        .write_slice_u32(colors, &vec![UNCOLORED; n as usize]);
    gpu.mem_mut().write_slice_u32(pri, &prios);
    gpu.mem_mut()
        .write_slice_u32(wl_a, &(0..n).collect::<Vec<u32>>());

    let mut wl = (wl_a, wl_b);
    let mut nwl = n;
    let mut round = 0u32;
    while nwl > 0 && round <= n {
        gpu.launch(
            check,
            ceil_div(nwl, PARENT_TB),
            &[row, col, colors, pri, flags, wl.0, nwl],
            0,
        )?;
        gpu.run_to_idle()?;
        gpu.mem_mut().write_u32(cnt, 0);
        gpu.launch(
            assign,
            ceil_div(nwl, PARENT_TB),
            &[colors, flags, wl.0, wl.1, cnt, nwl, round],
            0,
        )?;
        gpu.run_to_idle()?;
        nwl = gpu.mem().read_u32(cnt);
        wl = (wl.1, wl.0);
        round += 1;
    }

    let got = gpu.mem().read_vec_u32(colors, n as usize);
    let want = host_coloring(g, &prios);
    validate_u32(name, "color", &got, &want)?;
    if !is_proper_coloring(g, &got) {
        return Err(SimError::ValidationFailed {
            app: name.to_string(),
            detail: "coloring is not proper (adjacent vertices share a color)".into(),
        });
    }
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats: gpu.stats().clone(),
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::graph;

    #[test]
    fn host_coloring_is_proper() {
        let g = graph::citation(300, 3, 1);
        let prios: Vec<u32> = (0..300u32).map(|v| v.wrapping_mul(2654435761)).collect();
        let c = host_coloring(&g, &prios);
        assert!(is_proper_coloring(&g, &c));
    }

    #[test]
    fn gpu_matches_host_on_all_variants() -> Result<(), SimError> {
        let g = graph::graph500_logn(200, 4, 2);
        for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
            run("clr_test", &g, v, GpuConfig::test_small())?;
        }
        Ok(())
    }

    #[test]
    fn skewed_graph_launches_dynamically() -> Result<(), SimError> {
        let g = graph::citation(400, 4, 9);
        let r = run("clr_cit", &g, Variant::Dtbl, GpuConfig::test_small())?;
        assert!(r.stats.dyn_launches() > 0);
        Ok(())
    }
}
