//! Product recommendation: item-based collaborative filtering (after
//! Nadungodage et al.\[25\]).
//!
//! Computes the similarity of every catalogue item to a query item as the
//! dot product of their rating vectors. The parent kernel owns one item
//! per thread; the loop over the item's rating list — power-law sized,
//! often in the thousands — is the dynamically-formed parallelism. This
//! is the paper's *coarse-grained* DFP benchmark (≈1528 threads per
//! dynamic launch), which is why its occupancy and waiting-time gains are
//! small (§5.2B).

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp, validate_u32, Variant};
use crate::data::ratings::RatingSet;
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};

const PARENT_TB: u32 = 128;

pub(crate) fn build_program(variant: Variant) -> Result<(Program, KernelId), SimError> {
    let mut prog = Program::new();

    // Child: accumulate `count` rating products; params:
    // [count, users_addr, vals_addr, qvec, sim_addr].
    let mut cb = KernelBuilder::new("pre_dot", Dim3::x(crate::common::CHILD_TB), 5);
    let i = child_guard(&mut cb);
    let users = cb.ld_param(1);
    let vals = cb.ld_param(2);
    let qvec = cb.ld_param(3);
    let sim = cb.ld_param(4);
    emit_dot_step(&mut cb, i, users, vals, qvec, sim);
    let child = prog.add(build_kernel(cb)?);

    // Parent: one thread per item; params:
    // [item_offsets, users, vals, qvec, sims, n_items].
    let mut pb = KernelBuilder::new("pre_item", Dim3::x(PARENT_TB), 6);
    let gtid = pb.global_tid();
    let n_items = pb.ld_param(5);
    let oob = pb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(n_items));
    pb.if_(oob, |b| b.exit());
    let offs = pb.ld_param(0);
    let users = pb.ld_param(1);
    let vals = pb.ld_param(2);
    let qvec = pb.ld_param(3);
    let sims = pb.ld_param(4);
    let oa = pb.mad(gtid, Op::Imm(4), Op::Reg(offs));
    let start = pb.ld(Space::Global, oa, 0);
    let end = pb.ld(Space::Global, oa, 4);
    let cnt = pb.isub(end, Op::Reg(start));
    let users_addr = pb.mad(start, Op::Imm(4), Op::Reg(users));
    let vals_addr = pb.mad(start, Op::Imm(4), Op::Reg(vals));
    let sim_addr = pb.mad(gtid, Op::Imm(4), Op::Reg(sims));
    emit_dfp(
        &mut pb,
        variant.launch_mode(),
        child,
        cnt,
        &[
            Op::Reg(users_addr),
            Op::Reg(vals_addr),
            Op::Reg(qvec),
            Op::Reg(sim_addr),
        ],
        |b, i| {
            emit_dot_step(b, i, users_addr, vals_addr, qvec, sim_addr);
        },
    );
    let parent = prog.add(build_kernel(pb)?);
    Ok((prog, parent))
}

/// Emits one dot-product term: `sim += vals[i] * qvec[users[i]]`
/// (atomic so the child and inline variants share the exact algorithm).
fn emit_dot_step(
    b: &mut KernelBuilder,
    i: gpu_isa::Reg,
    users: gpu_isa::Reg,
    vals: gpu_isa::Reg,
    qvec: gpu_isa::Reg,
    sim_addr: gpu_isa::Reg,
) {
    let ua = b.mad(i, Op::Imm(4), Op::Reg(users));
    let u = b.ld(Space::Global, ua, 0);
    let va = b.mad(i, Op::Imm(4), Op::Reg(vals));
    let r = b.ld(Space::Global, va, 0);
    let qa = b.mad(u, Op::Imm(4), Op::Reg(qvec));
    let q = b.ld(Space::Global, qa, 0);
    let prod = b.imul(r, Op::Reg(q));
    let nz = b.setp(CmpOp::Ne, CmpTy::U32, prod, Op::Imm(0));
    b.if_(nz, |b| {
        b.atom_noret(AtomOp::Add, Space::Global, sim_addr, 0, Op::Reg(prod));
    });
}

/// Host reference: per-item dot products against the query item's dense
/// rating vector.
pub fn host_similarities(r: &RatingSet, query_item: u32) -> Vec<u32> {
    let mut qvec = vec![0u32; r.num_users as usize];
    for (u, v) in r.item_ratings(query_item) {
        qvec[u as usize] = v;
    }
    (0..r.num_items())
        .map(|i| {
            r.item_ratings(i)
                .map(|(u, v)| v.wrapping_mul(qvec[u as usize]))
                .fold(0u32, u32::wrapping_add)
        })
        .collect()
}

/// Runs the similarity computation and validates every item's score.
pub fn run(
    name: &str,
    r: &RatingSet,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, parent) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, r, parent, variant)
}

/// Executes the similarity computation on an already-bound `gpu` (fresh
/// or warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    r: &RatingSet,
    parent: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let query_item = 0u32;
    let mut qvec_host = vec![0u32; r.num_users as usize];
    for (u, v) in r.item_ratings(query_item) {
        qvec_host[u as usize] = v;
    }
    let n_items = r.num_items();

    let offs = gpu.malloc((n_items + 1) * 4)?;
    let users = gpu.malloc(r.num_ratings().max(1) * 4)?;
    let vals = gpu.malloc(r.num_ratings().max(1) * 4)?;
    let qvec = gpu.malloc(r.num_users.max(1) * 4)?;
    let sims = gpu.malloc(n_items * 4)?;

    gpu.mem_mut().write_slice_u32(offs, &r.item_offsets);
    gpu.mem_mut().write_slice_u32(users, &r.users);
    gpu.mem_mut().write_slice_u32(vals, &r.values);
    gpu.mem_mut().write_slice_u32(qvec, &qvec_host);

    gpu.launch(
        parent,
        ceil_div(n_items, PARENT_TB),
        &[offs, users, vals, qvec, sims, n_items],
        0,
    )?;
    gpu.run_to_idle()?;

    let got = gpu.mem().read_vec_u32(sims, n_items as usize);
    validate_u32(name, "similarity", &got, &host_similarities(r, query_item))?;
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats: gpu.stats().clone(),
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ratings;

    #[test]
    fn similarities_match_host() -> Result<(), SimError> {
        let r = ratings::movielens_like(60, 400, 120, 1);
        for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
            run("pre_test", &r, v, GpuConfig::test_small())?;
        }
        Ok(())
    }

    #[test]
    fn dfp_is_coarse_grained() -> Result<(), SimError> {
        let r = ratings::movielens_like(60, 1500, 900, 2);
        let rep = run("pre_test", &r, Variant::Dtbl, GpuConfig::test_small())?;
        if rep.stats.dyn_launches() > 0 {
            assert!(
                rep.stats.avg_dyn_launch_threads() > 100.0,
                "popular-item lists are large: {}",
                rep.stats.avg_dyn_launch_threads()
            );
        }
        Ok(())
    }
}
