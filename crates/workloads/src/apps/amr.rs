//! Adaptive mesh refinement over a combustion-like scalar field.
//!
//! Cells whose field range across corners exceeds a threshold subdivide
//! 4×4; the emission/evaluation of the 16 sub-cells is the
//! dynamically-formed parallelism. In the DTBL variant the sub-cell
//! groups coalesce back to the refinement kernel itself — the paper's
//! Figure 2a self-coalescing shape. The paper reports AMR as the largest
//! warp-activity winner (+45.3%): in the flat variant a few threads near
//! flame fronts refine deeply while their warp-mates idle.

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp_with_threshold, Variant};
use crate::data::mesh::ScalarField;
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};

const PARENT_TB: u32 = 128;
/// Sub-cells per refinement (4×4 split).
const SUBDIV: u32 = 16;
/// Field-range threshold above which a cell refines.
const THRESH: u32 = 150;

pub(crate) fn build_program(variant: Variant) -> Result<(Program, KernelId), SimError> {
    let mut prog = Program::new();

    // Child: emit `count` = 16 sub-cells of the refining cell; params:
    // [count, x, y, sub_size, cells_out, cnt, field, fsize, vals].
    let mut cb = KernelBuilder::new("amr_emit", Dim3::x(crate::common::CHILD_TB), 9);
    let i = child_guard(&mut cb);
    let x = cb.ld_param(1);
    let y = cb.ld_param(2);
    let s4 = cb.ld_param(3);
    let out = cb.ld_param(4);
    let cnt = cb.ld_param(5);
    let field = cb.ld_param(6);
    let fsize = cb.ld_param(7);
    let vals = cb.ld_param(8);
    emit_subcell(&mut cb, i, x, y, s4, out, cnt, field, fsize, vals);
    let child = prog.add(build_kernel(cb)?);

    // Parent: one thread per cell; params:
    // [cells_in, n_cells, field, fsize, cell_size, cells_out, cnt, vals].
    let mut pb = KernelBuilder::new("amr_level", Dim3::x(PARENT_TB), 8);
    let gtid = pb.global_tid();
    let nc = pb.ld_param(1);
    let oob = pb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nc));
    pb.if_(oob, |b| b.exit());
    let cells = pb.ld_param(0);
    let field = pb.ld_param(2);
    let fsize = pb.ld_param(3);
    let size = pb.ld_param(4);
    let out = pb.ld_param(5);
    let cnt = pb.ld_param(6);
    let vals = pb.ld_param(7);
    let ca = pb.mad(gtid, Op::Imm(8), Op::Reg(cells));
    let x = pb.ld(Space::Global, ca, 0);
    let y = pb.ld(Space::Global, ca, 4);
    // Corner samples at (x, y), (x+s-1, y), (x, y+s-1), (x+s-1, y+s-1).
    let sm1 = pb.isub(size, Op::Imm(1));
    let sample = |b: &mut KernelBuilder, sx: gpu_isa::Reg, sy: gpu_isa::Reg| {
        let row = b.imul(sy, Op::Reg(fsize));
        let idx = b.iadd(row, Op::Reg(sx));
        let a = b.mad(idx, Op::Imm(4), Op::Reg(field));
        b.ld(Space::Global, a, 0)
    };
    let x1 = pb.iadd(x, Op::Reg(sm1));
    let y1 = pb.iadd(y, Op::Reg(sm1));
    let f00 = sample(&mut pb, x, y);
    let f01 = sample(&mut pb, x1, y);
    let f10 = sample(&mut pb, x, y1);
    let f11 = sample(&mut pb, x1, y1);
    let mx = pb.imaxs(f00, Op::Reg(f01));
    let mx = pb.imaxs(mx, Op::Reg(f10));
    let mx = pb.imaxs(mx, Op::Reg(f11));
    let mn = pb.imins(f00, Op::Reg(f01));
    let mn = pb.imins(mn, Op::Reg(f10));
    let mn = pb.imins(mn, Op::Reg(f11));
    let range = pb.isub(mx, Op::Reg(mn));
    let hot = pb.setp(CmpOp::Gt, CmpTy::U32, range, Op::Imm(THRESH));
    let big = pb.setp(CmpOp::Ge, CmpTy::U32, size, Op::Imm(4));
    let refine = pb.pand(hot, big);
    pb.if_(refine, |b| {
        let s4 = b.shru(size, Op::Imm(2));
        let sixteen = b.imm(SUBDIV);
        // A refinement's natural granularity is its 16 sub-cells; launch
        // at that size rather than the default warp-sized threshold.
        emit_dfp_with_threshold(
            b,
            variant.launch_mode(),
            child,
            sixteen,
            SUBDIV,
            &[
                Op::Reg(x),
                Op::Reg(y),
                Op::Reg(s4),
                Op::Reg(out),
                Op::Reg(cnt),
                Op::Reg(field),
                Op::Reg(fsize),
                Op::Reg(vals),
            ],
            |b, i| {
                emit_subcell(b, i, x, y, s4, out, cnt, field, fsize, vals);
            },
        );
    });
    let parent = prog.add(build_kernel(pb)?);
    Ok((prog, parent))
}

/// Emits sub-cell `i` (row-major within the 4×4 split): interpolates the
/// refined value from the sub-cell's corner samples (the actual
/// refinement computation) and appends the sub-cell to the next level's
/// list.
#[allow(clippy::too_many_arguments)]
fn emit_subcell(
    b: &mut KernelBuilder,
    i: gpu_isa::Reg,
    x: gpu_isa::Reg,
    y: gpu_isa::Reg,
    s4: gpu_isa::Reg,
    out: gpu_isa::Reg,
    cnt: gpu_isa::Reg,
    field: gpu_isa::Reg,
    fsize: gpu_isa::Reg,
    vals: gpu_isa::Reg,
) {
    let col = b.and_(i, Op::Imm(3));
    let row = b.shru(i, Op::Imm(2));
    let cx = b.mad(col, Op::Reg(s4), Op::Reg(x));
    let cy = b.mad(row, Op::Reg(s4), Op::Reg(y));
    // Refined value: mean of the sub-cell's four corner samples.
    let sm1 = b.isub(s4, Op::Imm(1));
    let cx1 = b.iadd(cx, Op::Reg(sm1));
    let cy1 = b.iadd(cy, Op::Reg(sm1));
    let sample = |b: &mut KernelBuilder, sx: gpu_isa::Reg, sy: gpu_isa::Reg| {
        let r = b.imul(sy, Op::Reg(fsize));
        let idx = b.iadd(r, Op::Reg(sx));
        let a = b.mad(idx, Op::Imm(4), Op::Reg(field));
        b.ld(Space::Global, a, 0)
    };
    let f00 = sample(b, cx, cy);
    let f01 = sample(b, cx1, cy);
    let f10 = sample(b, cx, cy1);
    let f11 = sample(b, cx1, cy1);
    let sum = b.iadd(f00, Op::Reg(f01));
    let sum = b.iadd(sum, Op::Reg(f10));
    let sum = b.iadd(sum, Op::Reg(f11));
    let mean = b.shru(sum, Op::Imm(2));
    let pos = b.atom(AtomOp::Add, Space::Global, cnt, 0, Op::Imm(1));
    let oa = b.mad(pos, Op::Imm(8), Op::Reg(out));
    b.st(Space::Global, oa, 0, Op::Reg(cx));
    b.st(Space::Global, oa, 4, Op::Reg(cy));
    let va = b.mad(pos, Op::Imm(4), Op::Reg(vals));
    b.st(Space::Global, va, 0, Op::Reg(mean));
}

/// Host mirror of the refinement recursion; returns
/// `(total_refined_cells, coordinate_checksum)`.
pub fn host_refine(field: &ScalarField, cell0: u32) -> (u64, u64) {
    let mut total = 0u64;
    let mut checksum = 0u64;
    let mut cells: Vec<(u32, u32)> = (0..field.size / cell0)
        .flat_map(|cy| (0..field.size / cell0).map(move |cx| (cx * cell0, cy * cell0)))
        .collect();
    let mut size = cell0;
    while !cells.is_empty() && size >= 1 {
        let mut next = Vec::new();
        for &(x, y) in &cells {
            let c = [
                field.at(x, y),
                field.at(x + size - 1, y),
                field.at(x, y + size - 1),
                field.at(x + size - 1, y + size - 1),
            ];
            let range = c.iter().max().unwrap() - c.iter().min().unwrap();
            if range > THRESH && size >= 4 {
                let s4 = size / 4;
                for k in 0..SUBDIV {
                    let cx = x + (k % 4) * s4;
                    let cy = y + (k / 4) * s4;
                    next.push((cx, cy));
                    total += 1;
                    checksum = checksum.wrapping_add(u64::from(cx) * 31 + u64::from(cy) * 17);
                }
            }
        }
        cells = next;
        size /= 4;
    }
    (total, checksum)
}

/// Runs the refinement cascade and validates cell count and coordinate
/// checksum against the host mirror.
///
/// # Errors
///
/// Any [`SimError`] from the simulation, or
/// [`SimError::ValidationFailed`] on divergence from the host mirror.
pub fn run(
    name: &str,
    field: &ScalarField,
    cell0: u32,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, parent) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, field, cell0, parent, variant)
}

/// Executes the refinement cascade on an already-bound `gpu` (fresh or
/// warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    field: &ScalarField,
    cell0: u32,
    parent: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let fbuf = gpu.malloc(field.values.len() as u32 * 4)?;
    gpu.mem_mut().write_slice_u32(fbuf, &field.values);

    // Upper bound on cells per level: every cell refines.
    let top: Vec<u32> = (0..field.size / cell0)
        .flat_map(|cy| (0..field.size / cell0).flat_map(move |cx| [cx * cell0, cy * cell0]))
        .collect();
    let max_cells = (top.len() as u32 / 2) * SUBDIV * SUBDIV * SUBDIV;
    let cells_a = gpu.malloc(max_cells.max(64) * 8)?;
    let cells_b = gpu.malloc(max_cells.max(64) * 8)?;
    let vals = gpu.malloc(max_cells.max(64) * 4)?;
    let cnt = gpu.malloc(4)?;
    gpu.mem_mut().write_slice_u32(cells_a, &top);

    let mut bufs = (cells_a, cells_b);
    let mut n_cells = top.len() as u32 / 2;
    let mut size = cell0;
    let mut total = 0u64;
    let mut checksum = 0u64;
    while n_cells > 0 && size >= 1 {
        gpu.mem_mut().write_u32(cnt, 0);
        gpu.launch(
            parent,
            ceil_div(n_cells, PARENT_TB),
            &[bufs.0, n_cells, fbuf, field.size, size, bufs.1, cnt, vals],
            0,
        )?;
        gpu.run_to_idle()?;
        let emitted = gpu.mem().read_u32(cnt);
        total += u64::from(emitted);
        for k in 0..emitted {
            let cx = gpu.mem().read_u32(bufs.1 + k * 8);
            let cy = gpu.mem().read_u32(bufs.1 + k * 8 + 4);
            checksum = checksum.wrapping_add(u64::from(cx) * 31 + u64::from(cy) * 17);
        }
        bufs = (bufs.1, bufs.0);
        n_cells = emitted;
        size /= 4;
    }

    let (want_total, want_sum) = host_refine(field, cell0);
    if total != want_total || checksum != want_sum {
        return Err(SimError::ValidationFailed {
            app: name.to_string(),
            detail: format!(
                "refined {total} cells (checksum {checksum:#x}), \
                 host refined {want_total} (checksum {want_sum:#x})"
            ),
        });
    }
    let stats = gpu.stats().clone();
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats,
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::mesh;

    #[test]
    fn refinement_matches_host_on_all_variants() -> Result<(), SimError> {
        let f = mesh::combustion_field(128, 2, 1);
        for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
            run("amr_test", &f, 32, v, GpuConfig::test_small())?;
        }
        Ok(())
    }

    #[test]
    fn fronts_cause_refinement_and_launches() -> Result<(), SimError> {
        let f = mesh::combustion_field(128, 3, 2);
        let (total, _) = host_refine(&f, 32);
        assert!(total > 0, "fronts must refine");
        let r = run("amr_test", &f, 32, Variant::Dtbl, GpuConfig::test_small())?;
        assert!(r.stats.dyn_launches() > 0);
        Ok(())
    }

    #[test]
    fn quiet_field_never_refines() -> Result<(), SimError> {
        let f = ScalarField {
            size: 64,
            values: vec![100; 64 * 64],
        };
        let (total, sum) = host_refine(&f, 16);
        assert_eq!((total, sum), (0, 0));
        let r = run("amr_quiet", &f, 16, Variant::Flat, GpuConfig::test_small())?;
        assert_eq!(r.stats.dyn_launches(), 0);
        Ok(())
    }
}
