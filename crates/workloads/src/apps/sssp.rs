//! Single-source shortest path: frontier-based Bellman-Ford relaxation.
//!
//! Same structure as [`bfs`](crate::apps::bfs) but with weighted edges,
//! `atomicMin` relaxation, and re-insertion of improved vertices. The
//! per-vertex neighbour relaxation loop is the dynamically-formed
//! parallelism.

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp, validate_u32, Variant};
use crate::data::CsrGraph;
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};

const PARENT_TB: u32 = 128;
const INF: u32 = u32::MAX;

pub(crate) fn build_program(variant: Variant) -> Result<(Program, KernelId), SimError> {
    let mut prog = Program::new();

    // Child: relax `count` edges; params:
    // [count, edge_addr, weight_addr, dist, dv, flags, fout, cnt, tag].
    let mut cb = KernelBuilder::new("sssp_relax", Dim3::x(crate::common::CHILD_TB), 9);
    let i = child_guard(&mut cb);
    let edges = cb.ld_param(1);
    let weights = cb.ld_param(2);
    let dist = cb.ld_param(3);
    let dv = cb.ld_param(4);
    let flags = cb.ld_param(5);
    let fout = cb.ld_param(6);
    let cnt = cb.ld_param(7);
    let tag = cb.ld_param(8);
    emit_relax(&mut cb, i, edges, weights, dist, dv, flags, fout, cnt, tag);
    let child = prog.add(build_kernel(cb)?);

    // Parent: one thread per frontier vertex; params:
    // [row, col, w, dist, fin, fout, cnt, flags, nf, tag].
    let mut pb = KernelBuilder::new("sssp_level", Dim3::x(PARENT_TB), 10);
    let gtid = pb.global_tid();
    let nf = pb.ld_param(8);
    let oob = pb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nf));
    pb.if_(oob, |b| b.exit());
    let row = pb.ld_param(0);
    let col = pb.ld_param(1);
    let wts = pb.ld_param(2);
    let dist = pb.ld_param(3);
    let fin = pb.ld_param(4);
    let fout = pb.ld_param(5);
    let cnt = pb.ld_param(6);
    let flags = pb.ld_param(7);
    let tag = pb.ld_param(9);
    let va = pb.mad(gtid, Op::Imm(4), Op::Reg(fin));
    let v = pb.ld(Space::Global, va, 0);
    let ra = pb.mad(v, Op::Imm(4), Op::Reg(row));
    let start = pb.ld(Space::Global, ra, 0);
    let end = pb.ld(Space::Global, ra, 4);
    let deg = pb.isub(end, Op::Reg(start));
    let edge_addr = pb.mad(start, Op::Imm(4), Op::Reg(col));
    let weight_addr = pb.mad(start, Op::Imm(4), Op::Reg(wts));
    let da = pb.mad(v, Op::Imm(4), Op::Reg(dist));
    let dv = pb.ld(Space::Global, da, 0);
    emit_dfp(
        &mut pb,
        variant.launch_mode(),
        child,
        deg,
        &[
            Op::Reg(edge_addr),
            Op::Reg(weight_addr),
            Op::Reg(dist),
            Op::Reg(dv),
            Op::Reg(flags),
            Op::Reg(fout),
            Op::Reg(cnt),
            Op::Reg(tag),
        ],
        |b, i| {
            emit_relax(
                b,
                i,
                edge_addr,
                weight_addr,
                dist,
                dv,
                flags,
                fout,
                cnt,
                tag,
            );
        },
    );
    let parent = prog.add(build_kernel(pb)?);
    Ok((prog, parent))
}

/// Emits one edge relaxation: `u = edges[i]; nd = dv + w[i];
/// if atomicMin(dist[u], nd) > nd and flags[u] != tag { push u }`.
#[allow(clippy::too_many_arguments)]
fn emit_relax(
    b: &mut KernelBuilder,
    i: gpu_isa::Reg,
    edges: gpu_isa::Reg,
    weights: gpu_isa::Reg,
    dist: gpu_isa::Reg,
    dv: gpu_isa::Reg,
    flags: gpu_isa::Reg,
    fout: gpu_isa::Reg,
    cnt: gpu_isa::Reg,
    tag: gpu_isa::Reg,
) {
    let ea = b.mad(i, Op::Imm(4), Op::Reg(edges));
    let u = b.ld(Space::Global, ea, 0);
    let wa = b.mad(i, Op::Imm(4), Op::Reg(weights));
    let w = b.ld(Space::Global, wa, 0);
    let nd = b.iadd(dv, Op::Reg(w));
    let du = b.mad(u, Op::Imm(4), Op::Reg(dist));
    let old = b.atom(AtomOp::MinU, Space::Global, du, 0, Op::Reg(nd));
    let improved = b.setp(CmpOp::Lt, CmpTy::U32, nd, Op::Reg(old));
    b.if_(improved, |b| {
        let fa = b.mad(u, Op::Imm(4), Op::Reg(flags));
        let prev = b.atom(AtomOp::Exch, Space::Global, fa, 0, Op::Reg(tag));
        let fresh = b.setp(CmpOp::Ne, CmpTy::U32, prev, Op::Reg(tag));
        b.if_(fresh, |b| {
            let pos = b.atom(AtomOp::Add, Space::Global, cnt, 0, Op::Imm(1));
            let oa = b.mad(pos, Op::Imm(4), Op::Reg(fout));
            b.st(Space::Global, oa, 0, Op::Reg(u));
        });
    });
}

/// Host reference: Bellman-Ford to fixpoint.
pub fn host_sssp(g: &CsrGraph, source: u32) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n as u32 {
            let dv = dist[v as usize];
            if dv == INF {
                continue;
            }
            let s = g.row_offsets[v as usize] as usize;
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                let nd = dv.saturating_add(g.weight_at(s + k));
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    changed = true;
                }
            }
        }
    }
    dist
}

/// Runs SSSP from `source` and validates against [`host_sssp`].
pub fn run(
    name: &str,
    g: &CsrGraph,
    source: u32,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, parent) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, g, source, parent, variant)
}

/// Executes the relaxation rounds on an already-bound `gpu` (fresh or
/// warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    g: &CsrGraph,
    source: u32,
    parent: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let weights: Vec<u32> = g
        .weights
        .clone()
        .unwrap_or_else(|| vec![1; g.num_edges() as usize]);
    let n = g.num_vertices();

    let row = gpu.malloc((n + 1) * 4)?;
    let col = gpu.malloc(g.num_edges().max(1) * 4)?;
    let wts = gpu.malloc(g.num_edges().max(1) * 4)?;
    let dist = gpu.malloc(n * 4)?;
    let f_a = gpu.malloc(n * 4)?;
    let f_b = gpu.malloc(n * 4)?;
    let flags = gpu.malloc(n * 4)?;
    let cnt = gpu.malloc(4)?;

    gpu.mem_mut().write_slice_u32(row, &g.row_offsets);
    gpu.mem_mut().write_slice_u32(col, &g.col_indices);
    gpu.mem_mut().write_slice_u32(wts, &weights);
    gpu.mem_mut().write_slice_u32(dist, &vec![INF; n as usize]);
    gpu.mem_mut().write_slice_u32(flags, &vec![0; n as usize]);
    gpu.mem_mut().write_u32(dist + source * 4, 0);
    gpu.mem_mut().write_u32(f_a, source);

    let mut frontier = (f_a, f_b);
    let mut nf = 1u32;
    let mut round = 0u32;
    while nf > 0 && round < 4 * n + 8 {
        gpu.mem_mut().write_u32(cnt, 0);
        let tag = round + 1;
        gpu.launch(
            parent,
            ceil_div(nf, PARENT_TB),
            &[
                row, col, wts, dist, frontier.0, frontier.1, cnt, flags, nf, tag,
            ],
            0,
        )?;
        gpu.run_to_idle()?;
        nf = gpu.mem().read_u32(cnt);
        frontier = (frontier.1, frontier.0);
        round += 1;
    }

    let got = gpu.mem().read_vec_u32(dist, n as usize);
    let want = host_sssp(g, source);
    validate_u32(name, "dist", &got, &want)?;
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats: gpu.stats().clone(),
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::graph;

    #[test]
    fn host_sssp_small_case() {
        // 0 -(5)-> 1, 0 -(2)-> 2, 2 -(2)-> 1.
        let g = CsrGraph {
            row_offsets: vec![0, 2, 2, 3],
            col_indices: vec![1, 2, 1],
            weights: Some(vec![5, 2, 2]),
        };
        assert_eq!(host_sssp(&g, 0), vec![0, 4, 2]);
    }

    #[test]
    fn all_variants_agree_on_weighted_citation() -> Result<(), SimError> {
        let g = graph::citation(250, 3, 4).with_random_weights(9, 4);
        for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
            run("sssp_test", &g, 0, v, GpuConfig::test_small())?;
        }
        Ok(())
    }

    #[test]
    fn flight_network_rarely_launches() -> Result<(), SimError> {
        let g = graph::flight(300, 6, 2).with_random_weights(5, 2);
        let r = run("sssp_flight", &g, 0, Variant::Dtbl, GpuConfig::test_small())?;
        // Spokes have degree ≤ 3; only the few hubs can trigger launches.
        assert!(
            (r.stats.dyn_launches() as u32) < g.num_vertices() / 10,
            "low-degree graph must launch rarely ({} launches)",
            r.stats.dyn_launches()
        );
        Ok(())
    }
}
