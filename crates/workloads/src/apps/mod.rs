//! The eight irregular applications of Table 4, each in Flat/CDP/DTBL
//! variants sharing identical algorithms and data structures (the paper's
//! fair-comparison methodology, §5.1).

pub mod amr;
pub mod bfs;
pub mod bht;
pub mod clr;
pub mod join;
pub mod pre;
pub mod regx;
pub mod sssp;
