//! Barnes-Hut quadtree construction over random points (after Burtscher &
//! Pingali\[8\]).
//!
//! Level-synchronous top-down build. Each tree node with more than
//! `LEAF_CAP` bodies is split into four quadrants; classifying and
//! scattering a node's bodies — whose count varies wildly between nodes —
//! is the dynamically-formed parallelism. The root's body list is huge
//! and deep nodes are tiny, giving the fine-grained launch mix the paper
//! reports for `bht` (avg ≈33 threads/launch, the biggest occupancy win
//! in Figure 8).

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp, Variant};
use crate::data::points::PointSet;
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Reg, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};

const PARENT_TB: u32 = 64;
/// Maximum bodies in a leaf.
pub const LEAF_CAP: u32 = 32;
/// Words per node record: `[x0, y0, size_log2, body_start, body_count]`.
const NODE_WORDS: u32 = 5;

/// Emits quadrant classification of body `i`:
/// `q = (x >= xmid) + 2*(y >= ymid)`.
fn emit_quadrant(
    b: &mut KernelBuilder,
    i: Reg,
    bodies: Reg,
    xs: Reg,
    ys: Reg,
    xmid: Reg,
    ymid: Reg,
) -> (Reg, Reg) {
    let ba = b.mad(i, Op::Imm(4), Op::Reg(bodies));
    let body = b.ld(Space::Global, ba, 0);
    let xa = b.mad(body, Op::Imm(4), Op::Reg(xs));
    let x = b.ld(Space::Global, xa, 0);
    let ya = b.mad(body, Op::Imm(4), Op::Reg(ys));
    let y = b.ld(Space::Global, ya, 0);
    let px = b.setp(CmpOp::Ge, CmpTy::U32, x, Op::Reg(xmid));
    let py = b.setp(CmpOp::Ge, CmpTy::U32, y, Op::Reg(ymid));
    let qx = b.sel(px, Op::Imm(1), Op::Imm(0));
    let qy = b.sel(py, Op::Imm(2), Op::Imm(0));
    let q = b.iadd(qx, Op::Reg(qy));
    (q, body)
}

/// Loads a node record and returns `(x0, y0, slog, start, count)`.
fn load_node(b: &mut KernelBuilder, nodes: Reg, idx: Reg) -> (Reg, Reg, Reg, Reg, Reg) {
    let stride = b.imul(idx, Op::Imm(NODE_WORDS * 4));
    let na = b.iadd(stride, Op::Reg(nodes));
    let x0 = b.ld(Space::Global, na, 0);
    let y0 = b.ld(Space::Global, na, 4);
    let slog = b.ld(Space::Global, na, 8);
    let start = b.ld(Space::Global, na, 12);
    let count = b.ld(Space::Global, na, 16);
    (x0, y0, slog, start, count)
}

/// Emits midpoint computation `x0 + 2^(slog-1)`.
fn emit_mid(b: &mut KernelBuilder, x0: Reg, slog: Reg) -> Reg {
    let sm1 = b.isub(slog, Op::Imm(1));
    let one = b.imm(1);
    let half = b.shl(one, Op::Reg(sm1));
    b.iadd(x0, Op::Reg(half))
}

pub(crate) fn build_program(
    variant: Variant,
) -> Result<(Program, KernelId, KernelId, KernelId), SimError> {
    let mut prog = Program::new();

    // Count child: params [count, bodies_addr, xs, ys, xmid, ymid, qc_addr].
    let mut cb = KernelBuilder::new("bht_count_child", Dim3::x(crate::common::CHILD_TB), 7);
    let i = child_guard(&mut cb);
    let bodies = cb.ld_param(1);
    let xs = cb.ld_param(2);
    let ys = cb.ld_param(3);
    let xmid = cb.ld_param(4);
    let ymid = cb.ld_param(5);
    let qc = cb.ld_param(6);
    let (q, _) = emit_quadrant(&mut cb, i, bodies, xs, ys, xmid, ymid);
    let qa = cb.mad(q, Op::Imm(4), Op::Reg(qc));
    cb.atom_noret(AtomOp::Add, Space::Global, qa, 0, Op::Imm(1));
    let count_child = prog.add(build_kernel(cb)?);

    // Scatter child: params
    // [count, bodies_addr, xs, ys, xmid, ymid, qcur_addr, bodies_out].
    let mut sb = KernelBuilder::new("bht_scatter_child", Dim3::x(crate::common::CHILD_TB), 8);
    let i = child_guard(&mut sb);
    let bodies = sb.ld_param(1);
    let xs = sb.ld_param(2);
    let ys = sb.ld_param(3);
    let xmid = sb.ld_param(4);
    let ymid = sb.ld_param(5);
    let qcur = sb.ld_param(6);
    let bout = sb.ld_param(7);
    let (q, body) = emit_quadrant(&mut sb, i, bodies, xs, ys, xmid, ymid);
    let qa = sb.mad(q, Op::Imm(4), Op::Reg(qcur));
    let pos = sb.atom(AtomOp::Add, Space::Global, qa, 0, Op::Imm(1));
    let oa = sb.mad(pos, Op::Imm(4), Op::Reg(bout));
    sb.st(Space::Global, oa, 0, Op::Reg(body));
    let scatter_child = prog.add(build_kernel(sb)?);

    // Count kernel: per node; params
    // [nodes, n_nodes, xs, ys, bodies_in, qcounts, leaf_total].
    let mut kb = KernelBuilder::new("bht_count", Dim3::x(PARENT_TB), 7);
    let gtid = kb.global_tid();
    let nn = kb.ld_param(1);
    let oob = kb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nn));
    kb.if_(oob, |b| b.exit());
    let nodes = kb.ld_param(0);
    let xs = kb.ld_param(2);
    let ys = kb.ld_param(3);
    let bin = kb.ld_param(4);
    let qcounts = kb.ld_param(5);
    let leaf_total = kb.ld_param(6);
    let (x0, y0, slog, start, count) = load_node(&mut kb, nodes, gtid);
    let small = kb.setp(CmpOp::Le, CmpTy::U32, count, Op::Imm(LEAF_CAP));
    let bottom = kb.setp(CmpOp::Eq, CmpTy::U32, slog, Op::Imm(0));
    let leaf = kb.por(small, bottom);
    kb.if_else_(
        leaf,
        |b| {
            b.atom_noret(AtomOp::Add, Space::Global, leaf_total, 0, Op::Reg(count));
        },
        |b| {
            let xmid = emit_mid(b, x0, slog);
            let ymid = emit_mid(b, y0, slog);
            let bodies_addr = b.mad(start, Op::Imm(4), Op::Reg(bin));
            let qc_addr = b.mad(gtid, Op::Imm(16), Op::Reg(qcounts));
            emit_dfp(
                b,
                variant.launch_mode(),
                count_child,
                count,
                &[
                    Op::Reg(bodies_addr),
                    Op::Reg(xs),
                    Op::Reg(ys),
                    Op::Reg(xmid),
                    Op::Reg(ymid),
                    Op::Reg(qc_addr),
                ],
                |b, i| {
                    let (q, _) = emit_quadrant(b, i, bodies_addr, xs, ys, xmid, ymid);
                    let qa = b.mad(q, Op::Imm(4), Op::Reg(qc_addr));
                    b.atom_noret(AtomOp::Add, Space::Global, qa, 0, Op::Imm(1));
                },
            );
        },
    );
    let count_k = prog.add(build_kernel(kb)?);

    // Emit kernel (flat in every variant): computes child offsets and
    // emits non-empty child nodes; params
    // [nodes, n_nodes, qcounts, qcursor, nodes_out, out_cnt, body_cursor].
    let mut eb = KernelBuilder::new("bht_emit", Dim3::x(PARENT_TB), 7);
    let gtid = eb.global_tid();
    let nn = eb.ld_param(1);
    let oob = eb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nn));
    eb.if_(oob, |b| b.exit());
    let nodes = eb.ld_param(0);
    let qcounts = eb.ld_param(2);
    let qcursor = eb.ld_param(3);
    let nout = eb.ld_param(4);
    let out_cnt = eb.ld_param(5);
    let body_cur = eb.ld_param(6);
    let (x0, y0, slog, _start, count) = load_node(&mut eb, nodes, gtid);
    let small = eb.setp(CmpOp::Le, CmpTy::U32, count, Op::Imm(LEAF_CAP));
    let bottom = eb.setp(CmpOp::Eq, CmpTy::U32, slog, Op::Imm(0));
    let leaf = eb.por(small, bottom);
    let not_leaf = eb.pnot(leaf);
    eb.if_(not_leaf, |b| {
        let base = b.atom(AtomOp::Add, Space::Global, body_cur, 0, Op::Reg(count));
        let qc_addr = b.mad(gtid, Op::Imm(16), Op::Reg(qcounts));
        let running = b.mov(Op::Reg(base));
        let slog1 = b.isub(slog, Op::Imm(1));
        let one = b.imm(1);
        let half = b.shl(one, Op::Reg(slog1));
        for k in 0..4u32 {
            let qk = b.ld(Space::Global, qc_addr, (k * 4) as i32);
            // Record the scatter cursor for quadrant k.
            let qcur_addr = b.mad(gtid, Op::Imm(16), Op::Reg(qcursor));
            b.st(Space::Global, qcur_addr, (k * 4) as i32, Op::Reg(running));
            let nonempty = b.setp(CmpOp::Gt, CmpTy::U32, qk, Op::Imm(0));
            b.if_(nonempty, |b| {
                let pos = b.atom(AtomOp::Add, Space::Global, out_cnt, 0, Op::Imm(1));
                let stride = b.imul(pos, Op::Imm(NODE_WORDS * 4));
                let na = b.iadd(stride, Op::Reg(nout));
                let cx = if k % 2 == 1 {
                    b.iadd(x0, Op::Reg(half))
                } else {
                    b.mov(Op::Reg(x0))
                };
                let cy = if k / 2 == 1 {
                    b.iadd(y0, Op::Reg(half))
                } else {
                    b.mov(Op::Reg(y0))
                };
                b.st(Space::Global, na, 0, Op::Reg(cx));
                b.st(Space::Global, na, 4, Op::Reg(cy));
                b.st(Space::Global, na, 8, Op::Reg(slog1));
                b.st(Space::Global, na, 12, Op::Reg(running));
                b.st(Space::Global, na, 16, Op::Reg(qk));
            });
            let next = b.iadd(running, Op::Reg(qk));
            b.mov_to(running, Op::Reg(next));
        }
    });
    let emit_k = prog.add(build_kernel(eb)?);

    // Scatter kernel: per node; params
    // [nodes, n_nodes, xs, ys, bodies_in, bodies_out, qcursor].
    let mut skb = KernelBuilder::new("bht_scatter", Dim3::x(PARENT_TB), 7);
    let gtid = skb.global_tid();
    let nn = skb.ld_param(1);
    let oob = skb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(nn));
    skb.if_(oob, |b| b.exit());
    let nodes = skb.ld_param(0);
    let xs = skb.ld_param(2);
    let ys = skb.ld_param(3);
    let bin = skb.ld_param(4);
    let bout = skb.ld_param(5);
    let qcursor = skb.ld_param(6);
    let (x0, y0, slog, start, count) = load_node(&mut skb, nodes, gtid);
    let small = skb.setp(CmpOp::Le, CmpTy::U32, count, Op::Imm(LEAF_CAP));
    let bottom = skb.setp(CmpOp::Eq, CmpTy::U32, slog, Op::Imm(0));
    let leaf = skb.por(small, bottom);
    let not_leaf = skb.pnot(leaf);
    skb.if_(not_leaf, |b| {
        let xmid = emit_mid(b, x0, slog);
        let ymid = emit_mid(b, y0, slog);
        let bodies_addr = b.mad(start, Op::Imm(4), Op::Reg(bin));
        let qcur_addr = b.mad(gtid, Op::Imm(16), Op::Reg(qcursor));
        emit_dfp(
            b,
            variant.launch_mode(),
            scatter_child,
            count,
            &[
                Op::Reg(bodies_addr),
                Op::Reg(xs),
                Op::Reg(ys),
                Op::Reg(xmid),
                Op::Reg(ymid),
                Op::Reg(qcur_addr),
                Op::Reg(bout),
            ],
            |b, i| {
                let (q, body) = emit_quadrant(b, i, bodies_addr, xs, ys, xmid, ymid);
                let qa = b.mad(q, Op::Imm(4), Op::Reg(qcur_addr));
                let pos = b.atom(AtomOp::Add, Space::Global, qa, 0, Op::Imm(1));
                let oa = b.mad(pos, Op::Imm(4), Op::Reg(bout));
                b.st(Space::Global, oa, 0, Op::Reg(body));
            },
        );
    });
    let scatter_k = prog.add(build_kernel(skb)?);

    Ok((prog, count_k, emit_k, scatter_k))
}

/// Side length (log2) of the host pre-split grid: real flat tree builders
/// parallelize the top of the tree over bodies; this reproduction's
/// per-node kernels would serialize the root's whole body list in one
/// thread instead, so all variants start from the same body-binned grid
/// (documented in DESIGN.md).
pub fn pre_split_log2(n_points: usize) -> u32 {
    if n_points >= 4_000 {
        4 // 16 x 16 top-level cells
    } else {
        2 // 4 x 4
    }
}

fn top_level_nodes(p: &PointSet) -> Vec<(u32, u32, Vec<u32>)> {
    let g = pre_split_log2(p.len());
    let slog0 = p.extent.trailing_zeros();
    let cell_log = slog0 - g;
    let side = 1u32 << g;
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); (side * side) as usize];
    for b in 0..p.len() as u32 {
        let cx = p.xs[b as usize] >> cell_log;
        let cy = p.ys[b as usize] >> cell_log;
        cells[(cy * side + cx) as usize].push(b);
    }
    cells
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(i, v)| {
            let cx = i as u32 % side;
            let cy = i as u32 / side;
            (cx << cell_log, cy << cell_log, v)
        })
        .collect()
}

/// Host mirror of the level-synchronous build; returns
/// `(total_leaf_bodies, total_leaves, max_depth_reached)`.
pub fn host_build(p: &PointSet) -> (u64, u64, u32) {
    #[derive(Clone)]
    struct Node {
        x0: u32,
        y0: u32,
        slog: u32,
        bodies: Vec<u32>,
    }
    let slog0 = p.extent.trailing_zeros() - pre_split_log2(p.len());
    let mut level: Vec<Node> = top_level_nodes(p)
        .into_iter()
        .map(|(x0, y0, bodies)| Node {
            x0,
            y0,
            slog: slog0,
            bodies,
        })
        .collect();
    let mut leaf_bodies = 0u64;
    let mut leaves = 0u64;
    let mut depth = 0u32;
    while !level.is_empty() {
        let mut next = Vec::new();
        for node in &level {
            if node.bodies.len() as u32 <= LEAF_CAP || node.slog == 0 {
                leaf_bodies += node.bodies.len() as u64;
                leaves += 1;
                continue;
            }
            let half = 1u32 << (node.slog - 1);
            let mut quads: [Vec<u32>; 4] = Default::default();
            for &b in &node.bodies {
                let qx = u32::from(p.xs[b as usize] >= node.x0 + half);
                let qy = u32::from(p.ys[b as usize] >= node.y0 + half);
                quads[(qy * 2 + qx) as usize].push(b);
            }
            for (k, q) in quads.into_iter().enumerate() {
                if !q.is_empty() {
                    next.push(Node {
                        x0: node.x0 + (k as u32 % 2) * half,
                        y0: node.y0 + (k as u32 / 2) * half,
                        slog: node.slog - 1,
                        bodies: q,
                    });
                }
            }
        }
        level = next;
        if !level.is_empty() {
            depth += 1;
        }
    }
    (leaf_bodies, leaves, depth)
}

/// Runs the tree build and validates the leaf body total against the
/// host mirror (every body must land in exactly one leaf).
pub fn run(
    name: &str,
    p: &PointSet,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, count_k, emit_k, scatter_k) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, p, count_k, emit_k, scatter_k, variant)
}

/// Executes the level-by-level tree build on an already-bound `gpu`
/// (fresh or warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    p: &PointSet,
    count_k: KernelId,
    emit_k: KernelId,
    scatter_k: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let n = p.len() as u32;

    // Generous node bound: each level splits off at most 4x nodes but is
    // also bounded by n / (CAP/4); use 8n/CAP + 64.
    let max_nodes = (8 * n / LEAF_CAP + 64).max(256);
    let xs = gpu.malloc(n * 4)?;
    let ys = gpu.malloc(n * 4)?;
    let nodes_a = gpu.malloc(max_nodes * NODE_WORDS * 4)?;
    let nodes_b = gpu.malloc(max_nodes * NODE_WORDS * 4)?;
    let bodies_a = gpu.malloc(n * 4)?;
    let bodies_b = gpu.malloc(n * 4)?;
    let qcounts = gpu.malloc(max_nodes * 16)?;
    let qcursor = gpu.malloc(max_nodes * 16)?;
    let leaf_total = gpu.malloc(4)?;
    let out_cnt = gpu.malloc(4)?;
    let body_cur = gpu.malloc(4)?;

    gpu.mem_mut().write_slice_u32(xs, &p.xs);
    gpu.mem_mut().write_slice_u32(ys, &p.ys);
    let slog0 = p.extent.trailing_zeros() - pre_split_log2(p.len());
    let top = top_level_nodes(p);
    let mut node_words = Vec::new();
    let mut body_order = Vec::new();
    for (x0, y0, cell_bodies) in &top {
        node_words.extend_from_slice(&[
            *x0,
            *y0,
            slog0,
            body_order.len() as u32,
            cell_bodies.len() as u32,
        ]);
        body_order.extend_from_slice(cell_bodies);
    }
    gpu.mem_mut().write_slice_u32(nodes_a, &node_words);
    gpu.mem_mut().write_slice_u32(bodies_a, &body_order);
    gpu.mem_mut().write_u32(leaf_total, 0);

    let mut nodes = (nodes_a, nodes_b);
    let mut bodies = (bodies_a, bodies_b);
    let mut n_nodes = top.len() as u32;
    while n_nodes > 0 {
        if n_nodes > max_nodes {
            return Err(SimError::ValidationFailed {
                app: name.to_string(),
                detail: format!("node bound exceeded: {n_nodes} > {max_nodes}"),
            });
        }
        // Zero this level's quadrant counters.
        gpu.mem_mut()
            .write_slice_u32(qcounts, &vec![0u32; (n_nodes * 4) as usize]);
        gpu.launch(
            count_k,
            ceil_div(n_nodes, PARENT_TB),
            &[nodes.0, n_nodes, xs, ys, bodies.0, qcounts, leaf_total],
            0,
        )?;
        gpu.run_to_idle()?;

        gpu.mem_mut().write_u32(out_cnt, 0);
        gpu.mem_mut().write_u32(body_cur, 0);
        gpu.launch(
            emit_k,
            ceil_div(n_nodes, PARENT_TB),
            &[
                nodes.0, n_nodes, qcounts, qcursor, nodes.1, out_cnt, body_cur,
            ],
            0,
        )?;
        gpu.run_to_idle()?;

        gpu.launch(
            scatter_k,
            ceil_div(n_nodes, PARENT_TB),
            &[nodes.0, n_nodes, xs, ys, bodies.0, bodies.1, qcursor],
            0,
        )?;
        gpu.run_to_idle()?;

        n_nodes = gpu.mem().read_u32(out_cnt);
        nodes = (nodes.1, nodes.0);
        bodies = (bodies.1, bodies.0);
    }

    let got_leaf_bodies = u64::from(gpu.mem().read_u32(leaf_total));
    let (want_leaf_bodies, _, _) = host_build(p);
    if got_leaf_bodies != want_leaf_bodies || got_leaf_bodies != u64::from(n) {
        return Err(SimError::ValidationFailed {
            app: name.to_string(),
            detail: format!(
                "leaf body total {got_leaf_bodies}, host counted \
                 {want_leaf_bodies} of {n} bodies"
            ),
        });
    }
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats: gpu.stats().clone(),
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::points;

    #[test]
    fn host_build_conserves_bodies() {
        let p = points::random_points(500, 8, 1);
        let (bodies, leaves, depth) = host_build(&p);
        assert_eq!(bodies, 500);
        assert!(leaves >= 4, "500 bodies with cap 32 must split");
        assert!(depth >= 1);
    }

    #[test]
    fn gpu_build_matches_host_on_all_variants() -> Result<(), SimError> {
        let p = points::random_points(400, 8, 2);
        for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
            run("bht_test", &p, v, GpuConfig::test_small())?;
        }
        Ok(())
    }

    #[test]
    fn clustered_points_build_deeper_trees() -> Result<(), SimError> {
        let u = points::random_points(600, 10, 3);
        let c = points::clustered_points(600, 10, 2, 3);
        let (_, _, du) = host_build(&u);
        let (_, _, dc) = host_build(&c);
        assert!(dc >= du, "clusters force deeper refinement ({dc} vs {du})");
        run("bht_clustered", &c, Variant::Dtbl, GpuConfig::test_small())?;
        Ok(())
    }

    #[test]
    fn tiny_input_makes_only_pre_split_leaves() -> Result<(), SimError> {
        let p = points::random_points(10, 6, 4);
        let (bodies, leaves, depth) = host_build(&p);
        assert_eq!(bodies, 10);
        // Every occupied pre-split cell is immediately a leaf (≤ cap).
        assert!((1..=10).contains(&leaves), "{leaves} leaves");
        assert_eq!(depth, 0, "nothing recurses below the pre-split grid");
        run("bht_tiny", &p, Variant::Flat, GpuConfig::test_small())?;
        Ok(())
    }
}
