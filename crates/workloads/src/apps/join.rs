//! Relational hash join (after Diamos et al.\[12\]).
//!
//! The build side is organized into hash buckets (CSR layout, built
//! identically for every variant); the probe kernel owns one probe tuple
//! per thread and scans its bucket's chain — whose length is the
//! dynamically-formed parallelism. Uniform keys give short, even chains;
//! Gaussian keys concentrate tuples in a few buckets, the imbalance that
//! makes `join_gaussian` one of the biggest warp-activity winners in
//! Figure 6.

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp, Variant};
use crate::data::relations::JoinInput;
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};

const PARENT_TB: u32 = 128;

/// Buckets = domain / 4, so chains average ~4 × build-size / domain.
fn num_buckets(domain: u32) -> u32 {
    (domain / 4).max(1)
}

pub(crate) fn build_program(variant: Variant) -> Result<(Program, KernelId), SimError> {
    let mut prog = Program::new();

    // Child: scan `count` chain entries; params:
    // [count, chain_addr, key, matches, out, probe_idx].
    let mut cb = KernelBuilder::new("join_chain", Dim3::x(crate::common::CHILD_TB), 6);
    let i = child_guard(&mut cb);
    let chain = cb.ld_param(1);
    let key = cb.ld_param(2);
    let matches = cb.ld_param(3);
    let out = cb.ld_param(4);
    let probe_idx = cb.ld_param(5);
    emit_probe_step(&mut cb, i, chain, key, matches, out, probe_idx);
    let child = prog.add(build_kernel(cb)?);

    // Probe kernel: one thread per probe tuple; params:
    // [bucket_off, bucket_keys, probe_keys, matches, out, n_probe, nbuckets].
    let mut pb = KernelBuilder::new("join_probe", Dim3::x(PARENT_TB), 7);
    let gtid = pb.global_tid();
    let n_probe = pb.ld_param(5);
    let oob = pb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(n_probe));
    pb.if_(oob, |b| b.exit());
    let boff = pb.ld_param(0);
    let bkeys = pb.ld_param(1);
    let pkeys = pb.ld_param(2);
    let matches = pb.ld_param(3);
    let out = pb.ld_param(4);
    let nb = pb.ld_param(6);
    let ka = pb.mad(gtid, Op::Imm(4), Op::Reg(pkeys));
    let key = pb.ld(Space::Global, ka, 0);
    let bucket = pb.iremu(key, Op::Reg(nb));
    let oa = pb.mad(bucket, Op::Imm(4), Op::Reg(boff));
    let start = pb.ld(Space::Global, oa, 0);
    let end = pb.ld(Space::Global, oa, 4);
    let len = pb.isub(end, Op::Reg(start));
    let chain = pb.mad(start, Op::Imm(4), Op::Reg(bkeys));
    emit_dfp(
        &mut pb,
        variant.launch_mode(),
        child,
        len,
        &[
            Op::Reg(chain),
            Op::Reg(key),
            Op::Reg(matches),
            Op::Reg(out),
            Op::Reg(gtid),
        ],
        |b, i| {
            emit_probe_step(b, i, chain, key, matches, out, gtid);
        },
    );
    let probe = prog.add(build_kernel(pb)?);
    Ok((prog, probe))
}

/// Emits one chain comparison: on key equality, reserve an output slot and
/// record the probe tuple id.
fn emit_probe_step(
    b: &mut KernelBuilder,
    i: gpu_isa::Reg,
    chain: gpu_isa::Reg,
    key: gpu_isa::Reg,
    matches: gpu_isa::Reg,
    out: gpu_isa::Reg,
    probe_idx: gpu_isa::Reg,
) {
    let ea = b.mad(i, Op::Imm(4), Op::Reg(chain));
    let bk = b.ld(Space::Global, ea, 0);
    let eq = b.setp(CmpOp::Eq, CmpTy::U32, bk, Op::Reg(key));
    b.if_(eq, |b| {
        let pos = b.atom(AtomOp::Add, Space::Global, matches, 0, Op::Imm(1));
        let oa = b.mad(pos, Op::Imm(4), Op::Reg(out));
        b.st(Space::Global, oa, 0, Op::Reg(probe_idx));
    });
}

/// Builds the bucket CSR on the host — identical preprocessing for every
/// variant (the evaluated, DFP-bearing phase is the probe).
fn build_buckets(input: &JoinInput) -> (Vec<u32>, Vec<u32>) {
    let nb = num_buckets(input.domain) as usize;
    let mut counts = vec![0u32; nb];
    for &k in &input.build_keys {
        counts[(k as usize) % nb] += 1;
    }
    let mut offsets = vec![0u32; nb + 1];
    for b in 0..nb {
        offsets[b + 1] = offsets[b] + counts[b];
    }
    let mut cursor = offsets.clone();
    let mut keys = vec![0u32; input.build_keys.len()];
    for &k in &input.build_keys {
        let b = (k as usize) % nb;
        keys[cursor[b] as usize] = k;
        cursor[b] += 1;
    }
    (offsets, keys)
}

/// Runs the probe phase and validates the match count against the host.
pub fn run(
    name: &str,
    input: &JoinInput,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, probe) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, input, probe, variant)
}

/// Executes the probe phase on an already-bound `gpu` (fresh or
/// warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    input: &JoinInput,
    probe: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let (offsets, bkeys) = build_buckets(input);

    let want = input.host_match_count();
    let n_probe = input.probe_keys.len() as u32;
    let boff = gpu.malloc(offsets.len() as u32 * 4)?;
    let bk = gpu.malloc(bkeys.len().max(1) as u32 * 4)?;
    let pk = gpu.malloc(n_probe.max(1) * 4)?;
    let matches = gpu.malloc(4)?;
    let out = gpu.malloc(((want as u32).max(1)) * 4)?;

    gpu.mem_mut().write_slice_u32(boff, &offsets);
    gpu.mem_mut().write_slice_u32(bk, &bkeys);
    gpu.mem_mut().write_slice_u32(pk, &input.probe_keys);
    gpu.mem_mut().write_u32(matches, 0);

    gpu.launch(
        probe,
        ceil_div(n_probe, PARENT_TB),
        &[
            boff,
            bk,
            pk,
            matches,
            out,
            n_probe,
            num_buckets(input.domain),
        ],
        0,
    )?;
    gpu.run_to_idle()?;

    let got = u64::from(gpu.mem().read_u32(matches));
    if got != want {
        return Err(SimError::ValidationFailed {
            app: name.to_string(),
            detail: format!("match count: got {got}, want {want}"),
        });
    }
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats: gpu.stats().clone(),
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::relations::{join_input, KeyDist};

    #[test]
    fn uniform_join_counts_match() -> Result<(), SimError> {
        let input = join_input(KeyDist::Uniform, 2000, 500, 256, 1);
        for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
            run("join_u", &input, v, GpuConfig::test_small())?;
        }
        Ok(())
    }

    #[test]
    fn gaussian_join_counts_match_and_flat_diverges_more() -> Result<(), SimError> {
        let uni = join_input(KeyDist::Uniform, 2000, 400, 256, 2);
        let gau = join_input(KeyDist::Gaussian, 2000, 400, 256, 2);
        let ru = run("join_u", &uni, Variant::Flat, GpuConfig::test_small())?;
        let rg = run("join_g", &gau, Variant::Flat, GpuConfig::test_small())?;
        // The paper's point (Figure 6): with skewed chains, flat threads in
        // the same warp loop for wildly different trip counts, depressing
        // warp activity relative to the balanced uniform input.
        assert!(
            rg.stats.warp_activity_pct() < ru.stats.warp_activity_pct(),
            "gaussian flat activity ({:.1}%) must trail uniform ({:.1}%)",
            rg.stats.warp_activity_pct(),
            ru.stats.warp_activity_pct()
        );
        // And the DTBL variant stays functionally correct on both.
        run("join_u", &uni, Variant::Dtbl, GpuConfig::test_small())?;
        run("join_g", &gau, Variant::Dtbl, GpuConfig::test_small())?;
        Ok(())
    }
}
