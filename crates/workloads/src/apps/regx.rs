//! Regular-expression matching over packet traffic (after GRegex\[37\]).
//!
//! A host-compiled DFA (the `.*012.*` intrusion signature over the
//! synthetic alphabet) is walked over every segment of every packet. The
//! parent kernel owns one packet per thread; the per-packet segment count
//! is the dynamically-formed parallelism. `regx_string` (many segments
//! per packet) is the launch-densest benchmark in the paper — the one
//! whose launch overhead even DTBL cannot fully hide (§5.2C).

use crate::common::{build_kernel, ceil_div, child_guard, emit_dfp, validate_scalar, Variant};
use crate::data::strings::{host_match, signature_dfa, PacketSet, ALPHABET};
use crate::report::RunReport;
use gpu_isa::{AtomOp, CmpOp, CmpTy, Dim3, KernelBuilder, KernelId, Op, Program, Space};
use gpu_sim::{Gpu, GpuConfig, SimError};

const PARENT_TB: u32 = 128;

pub(crate) fn build_program(variant: Variant) -> Result<(Program, KernelId), SimError> {
    let mut prog = Program::new();

    // Child: one thread per segment; params:
    // [count, seg_entry_addr, symbols, dfa, hits, accept].
    let mut cb = KernelBuilder::new("regx_seg", Dim3::x(crate::common::CHILD_TB), 6);
    let i = child_guard(&mut cb);
    let segs = cb.ld_param(1);
    let symbols = cb.ld_param(2);
    let dfa = cb.ld_param(3);
    let hits = cb.ld_param(4);
    let accept = cb.ld_param(5);
    emit_dfa_walk(&mut cb, i, segs, symbols, dfa, hits, accept);
    let child = prog.add(build_kernel(cb)?);

    // Parent: one thread per packet; params:
    // [packets, segments, symbols, dfa, hits, n_packets, accept].
    let mut pb = KernelBuilder::new("regx_packet", Dim3::x(PARENT_TB), 7);
    let gtid = pb.global_tid();
    let np = pb.ld_param(5);
    let oob = pb.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(np));
    pb.if_(oob, |b| b.exit());
    let packets = pb.ld_param(0);
    let segments = pb.ld_param(1);
    let symbols = pb.ld_param(2);
    let dfa = pb.ld_param(3);
    let hits = pb.ld_param(4);
    let accept = pb.ld_param(6);
    // packets[i] = (first_segment, count): two words per packet.
    let pa = pb.mad(gtid, Op::Imm(8), Op::Reg(packets));
    let first = pb.ld(Space::Global, pa, 0);
    let nseg = pb.ld(Space::Global, pa, 4);
    // Segment table entry address of the packet's first segment.
    let seg_entry = pb.mad(first, Op::Imm(8), Op::Reg(segments));
    emit_dfp(
        &mut pb,
        variant.launch_mode(),
        child,
        nseg,
        &[
            Op::Reg(seg_entry),
            Op::Reg(symbols),
            Op::Reg(dfa),
            Op::Reg(hits),
            Op::Reg(accept),
        ],
        |b, i| {
            emit_dfa_walk(b, i, seg_entry, symbols, dfa, hits, accept);
        },
    );
    let parent = prog.add(build_kernel(pb)?);
    Ok((prog, parent))
}

/// Emits a DFA walk over segment `i` of the table at `seg_entry`
/// ((offset, len) pairs), bumping `hits` when the accept state is reached.
#[allow(clippy::too_many_arguments)]
fn emit_dfa_walk(
    b: &mut KernelBuilder,
    i: gpu_isa::Reg,
    seg_entry: gpu_isa::Reg,
    symbols: gpu_isa::Reg,
    dfa: gpu_isa::Reg,
    hits: gpu_isa::Reg,
    accept: gpu_isa::Reg,
) {
    let sa = b.mad(i, Op::Imm(8), Op::Reg(seg_entry));
    let off = b.ld(Space::Global, sa, 0);
    let len = b.ld(Space::Global, sa, 4);
    let base = b.mad(off, Op::Imm(4), Op::Reg(symbols));
    let state = b.imm(0);
    b.for_range(Op::Imm(0), Op::Reg(len), |b, k| {
        let ca = b.mad(k, Op::Imm(4), Op::Reg(base));
        let sym = b.ld(Space::Global, ca, 0);
        let row = b.imul(state, Op::Imm(ALPHABET));
        let idx = b.iadd(row, Op::Reg(sym));
        let ta = b.mad(idx, Op::Imm(4), Op::Reg(dfa));
        let next = b.ld(Space::Global, ta, 0);
        b.mov_to(state, Op::Reg(next));
    });
    let hit = b.setp(CmpOp::Eq, CmpTy::U32, state, Op::Reg(accept));
    b.if_(hit, |b| {
        b.atom_noret(AtomOp::Add, Space::Global, hits, 0, Op::Imm(1));
    });
}

/// Host reference: total accepting segments.
pub fn host_hits(p: &PacketSet) -> u32 {
    let (table, _, accept) = signature_dfa();
    p.segments
        .iter()
        .filter(|&&(off, len)| {
            host_match(
                &table,
                accept,
                &p.symbols[off as usize..(off + len) as usize],
            )
        })
        .count() as u32
}

/// Runs the matcher and validates the hit count.
pub fn run(
    name: &str,
    p: &PacketSet,
    variant: Variant,
    base_cfg: GpuConfig,
) -> Result<RunReport, SimError> {
    let (prog, parent) = build_program(variant)?;
    let cfg = variant.configure(base_cfg);
    let mut gpu = Gpu::new(cfg, prog);
    drive(&mut gpu, name, p, parent, variant)
}

/// Executes the matcher on an already-bound `gpu` (fresh or
/// warm-rebound): the mutable half of the setup/run split.
pub(crate) fn drive(
    gpu: &mut Gpu,
    name: &str,
    p: &PacketSet,
    parent: KernelId,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let (table, _, accept) = signature_dfa();

    let syms = gpu.malloc(p.symbols.len().max(1) as u32 * 4)?;
    let segs = gpu.malloc(p.segments.len().max(1) as u32 * 8)?;
    let pkts = gpu.malloc(p.packets.len().max(1) as u32 * 8)?;
    let dfa = gpu.malloc(table.len() as u32 * 4)?;
    let hits = gpu.malloc(4)?;

    gpu.mem_mut().write_slice_u32(syms, &p.symbols);
    let seg_words: Vec<u32> = p.segments.iter().flat_map(|&(o, l)| [o, l]).collect();
    gpu.mem_mut().write_slice_u32(segs, &seg_words);
    let pkt_words: Vec<u32> = p.packets.iter().flat_map(|&(f, c)| [f, c]).collect();
    gpu.mem_mut().write_slice_u32(pkts, &pkt_words);
    gpu.mem_mut().write_slice_u32(dfa, &table);
    gpu.mem_mut().write_u32(hits, 0);

    let np = p.num_packets();
    gpu.launch(
        parent,
        ceil_div(np, PARENT_TB),
        &[pkts, segs, syms, dfa, hits, np, accept],
        0,
    )?;
    gpu.run_to_idle()?;

    let got = gpu.mem().read_u32(hits);
    validate_scalar(name, "accepting segments", got, host_hits(p))?;
    Ok(RunReport {
        benchmark: name.to_string(),
        variant,
        stats: gpu.stats().clone(),
        trace: gpu.take_trace(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::strings;

    #[test]
    fn darpa_hits_match_host() -> Result<(), SimError> {
        let p = strings::darpa_like(120, 1);
        for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
            run("regx_darpa", &p, v, GpuConfig::test_small())?;
        }
        Ok(())
    }

    #[test]
    fn random_strings_are_launch_dense() -> Result<(), SimError> {
        let p = strings::random_strings(40, 2);
        let r = run("regx_string", &p, Variant::Dtbl, GpuConfig::test_small())?;
        // Packets carry 24–96 segments; those at or above the warp-sized
        // threshold launch — the large majority.
        assert!(
            r.stats.dyn_launches() as u32 >= p.num_packets() / 2,
            "{} launches for {} packets",
            r.stats.dyn_launches(),
            p.num_packets()
        );
        Ok(())
    }
}
