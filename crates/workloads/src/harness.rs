//! The benchmark matrix of Table 4: eight applications × their input
//! data sets, at test and evaluation scales.

use crate::apps;
use crate::common::Variant;
use crate::data::{graph, mesh, points, ratings, relations, strings};
use crate::report::RunReport;
use gpu_sim::{GpuConfig, SimError};
use std::fmt;

/// Problem scale: `Test` sizes finish in well under a second each (CI),
/// `Eval` sizes are used by the figure-regeneration harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small inputs for unit/integration tests.
    Test,
    /// Evaluation inputs for the fig06–fig12 harness binaries.
    Eval,
}

/// The 16 benchmark configurations of the paper's evaluation (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Amr,
    Bht,
    BfsCitation,
    BfsUsaRoad,
    BfsCage15,
    ClrCitation,
    ClrGraph500,
    ClrCage15,
    RegxDarpa,
    RegxString,
    PreMovielens,
    JoinUniform,
    JoinGaussian,
    SsspCitation,
    SsspFlight,
    SsspCage15,
}

impl Benchmark {
    /// Every configuration, in the paper's figure order.
    pub const ALL: [Benchmark; 16] = [
        Benchmark::Amr,
        Benchmark::Bht,
        Benchmark::BfsCitation,
        Benchmark::BfsUsaRoad,
        Benchmark::BfsCage15,
        Benchmark::ClrCitation,
        Benchmark::ClrGraph500,
        Benchmark::ClrCage15,
        Benchmark::RegxDarpa,
        Benchmark::RegxString,
        Benchmark::PreMovielens,
        Benchmark::JoinUniform,
        Benchmark::JoinGaussian,
        Benchmark::SsspCitation,
        Benchmark::SsspFlight,
        Benchmark::SsspCage15,
    ];

    /// The configuration's name as it appears on the paper's x-axes.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Amr => "amr",
            Benchmark::Bht => "bht",
            Benchmark::BfsCitation => "bfs_citation",
            Benchmark::BfsUsaRoad => "bfs_usa_road",
            Benchmark::BfsCage15 => "bfs_cage15",
            Benchmark::ClrCitation => "clr_citation",
            Benchmark::ClrGraph500 => "clr_graph500",
            Benchmark::ClrCage15 => "clr_cage15",
            Benchmark::RegxDarpa => "regx_darpa",
            Benchmark::RegxString => "regx_string",
            Benchmark::PreMovielens => "pre_movielens",
            Benchmark::JoinUniform => "join_uniform",
            Benchmark::JoinGaussian => "join_gaussian",
            Benchmark::SsspCitation => "sssp_citation",
            Benchmark::SsspFlight => "sssp_flight",
            Benchmark::SsspCage15 => "sssp_cage15",
        }
    }

    /// Runs the benchmark at `scale` under `variant` on the default K20c
    /// configuration. Fails with a typed [`SimError`] — e.g.
    /// [`SimError::ValidationFailed`] naming the benchmark — instead of
    /// panicking, so a sweep can report which configuration broke and
    /// keep going.
    pub fn run(self, variant: Variant, scale: Scale) -> Result<RunReport, SimError> {
        self.run_with(variant, scale, GpuConfig::k20c())
    }

    /// Runs with a caller-supplied base configuration (the AGT-size sweep
    /// of Figure 12 uses this).
    pub fn run_with(
        self,
        variant: Variant,
        scale: Scale,
        cfg: GpuConfig,
    ) -> Result<RunReport, SimError> {
        let name = self.name();
        let t = scale == Scale::Test;
        match self {
            Benchmark::Amr => {
                let f = mesh::combustion_field(if t { 128 } else { 1024 }, 6, 11);
                apps::amr::run(name, &f, 32, variant, cfg)
            }
            Benchmark::Bht => {
                let p = points::random_points(if t { 600 } else { 40_000 }, 11, 12);
                apps::bht::run(name, &p, variant, cfg)
            }
            Benchmark::BfsCitation => {
                let g = graph::citation(if t { 600 } else { 24_000 }, 4, 13);
                apps::bfs::run(name, &g, 0, variant, cfg)
            }
            Benchmark::BfsUsaRoad => {
                let (w, h) = if t { (20, 16) } else { (140, 100) };
                let g = graph::usa_road(w, h);
                apps::bfs::run(name, &g, 0, variant, cfg)
            }
            Benchmark::BfsCage15 => {
                let g = graph::cage15_like(if t { 600 } else { 6_000 }, 2_000, 30, 14);
                apps::bfs::run(name, &g, 0, variant, cfg)
            }
            Benchmark::ClrCitation => {
                let g = graph::citation(if t { 400 } else { 10_000 }, 4, 15);
                apps::clr::run(name, &g, variant, cfg)
            }
            Benchmark::ClrGraph500 => {
                let g = graph::graph500_logn(if t { 400 } else { 1_500 }, 16, 16);
                apps::clr::run(name, &g, variant, cfg)
            }
            Benchmark::ClrCage15 => {
                let g = graph::cage15_like(if t { 400 } else { 1_500 }, 800, 30, 17);
                apps::clr::run(name, &g, variant, cfg)
            }
            Benchmark::RegxDarpa => {
                let p = strings::darpa_like(if t { 150 } else { 4_000 }, 18);
                apps::regx::run(name, &p, variant, cfg)
            }
            Benchmark::RegxString => {
                let p = strings::random_strings(if t { 60 } else { 2_500 }, 19);
                apps::regx::run(name, &p, variant, cfg)
            }
            Benchmark::PreMovielens => {
                let r = ratings::movielens_like(
                    if t { 80 } else { 3_000 },
                    if t { 800 } else { 12_000 },
                    if t { 300 } else { 240 },
                    20,
                );
                apps::pre::run(name, &r, variant, cfg)
            }
            Benchmark::JoinUniform => {
                let j = relations::join_input(
                    relations::KeyDist::Uniform,
                    if t { 2_000 } else { 120_000 },
                    if t { 500 } else { 20_000 },
                    if t { 512 } else { 32_768 },
                    21,
                );
                apps::join::run(name, &j, variant, cfg)
            }
            Benchmark::JoinGaussian => {
                let j = relations::join_input(
                    relations::KeyDist::Gaussian,
                    if t { 2_000 } else { 120_000 },
                    if t { 500 } else { 20_000 },
                    if t { 512 } else { 32_768 },
                    22,
                );
                apps::join::run(name, &j, variant, cfg)
            }
            Benchmark::SsspCitation => {
                let g =
                    graph::citation(if t { 400 } else { 12_000 }, 4, 23).with_random_weights(9, 23);
                apps::sssp::run(name, &g, 0, variant, cfg)
            }
            Benchmark::SsspFlight => {
                let g = graph::flight(if t { 400 } else { 12_000 }, if t { 8 } else { 500 }, 24)
                    .with_random_weights(9, 24);
                apps::sssp::run(name, &g, 0, variant, cfg)
            }
            Benchmark::SsspCage15 => {
                let g = graph::cage15_like(if t { 400 } else { 4_000 }, 1_500, 30, 25)
                    .with_random_weights(9, 25);
                apps::sssp::run(name, &g, 0, variant, cfg)
            }
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_unique_and_in_paper_order() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
        assert_eq!(names[0], "amr");
        assert_eq!(names[15], "sssp_cage15");
        assert_eq!(Benchmark::BfsCage15.to_string(), "bfs_cage15");
    }
}
