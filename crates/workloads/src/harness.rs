//! The benchmark matrix of Table 4: eight applications × their input
//! data sets, at test and evaluation scales.

use crate::common::Variant;
use crate::report::RunReport;
use gpu_sim::{GpuConfig, SimError};
use std::fmt;

/// Problem scale: `Test` sizes finish in well under a second each (CI),
/// `Eval` sizes are used by the figure-regeneration harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small inputs for unit/integration tests.
    Test,
    /// Evaluation inputs for the fig06–fig12 harness binaries.
    Eval,
}

impl Scale {
    /// Lower-case wire name (`test` / `eval`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Eval => "eval",
        }
    }

    /// Parses a wire [`name`](Scale::name) back into its scale.
    pub fn from_name(name: &str) -> Option<Scale> {
        match name {
            "test" => Some(Scale::Test),
            "eval" => Some(Scale::Eval),
            _ => None,
        }
    }
}

/// The 16 benchmark configurations of the paper's evaluation (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Amr,
    Bht,
    BfsCitation,
    BfsUsaRoad,
    BfsCage15,
    ClrCitation,
    ClrGraph500,
    ClrCage15,
    RegxDarpa,
    RegxString,
    PreMovielens,
    JoinUniform,
    JoinGaussian,
    SsspCitation,
    SsspFlight,
    SsspCage15,
}

impl Benchmark {
    /// Every configuration, in the paper's figure order.
    pub const ALL: [Benchmark; 16] = [
        Benchmark::Amr,
        Benchmark::Bht,
        Benchmark::BfsCitation,
        Benchmark::BfsUsaRoad,
        Benchmark::BfsCage15,
        Benchmark::ClrCitation,
        Benchmark::ClrGraph500,
        Benchmark::ClrCage15,
        Benchmark::RegxDarpa,
        Benchmark::RegxString,
        Benchmark::PreMovielens,
        Benchmark::JoinUniform,
        Benchmark::JoinGaussian,
        Benchmark::SsspCitation,
        Benchmark::SsspFlight,
        Benchmark::SsspCage15,
    ];

    /// The configuration's name as it appears on the paper's x-axes.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Amr => "amr",
            Benchmark::Bht => "bht",
            Benchmark::BfsCitation => "bfs_citation",
            Benchmark::BfsUsaRoad => "bfs_usa_road",
            Benchmark::BfsCage15 => "bfs_cage15",
            Benchmark::ClrCitation => "clr_citation",
            Benchmark::ClrGraph500 => "clr_graph500",
            Benchmark::ClrCage15 => "clr_cage15",
            Benchmark::RegxDarpa => "regx_darpa",
            Benchmark::RegxString => "regx_string",
            Benchmark::PreMovielens => "pre_movielens",
            Benchmark::JoinUniform => "join_uniform",
            Benchmark::JoinGaussian => "join_gaussian",
            Benchmark::SsspCitation => "sssp_citation",
            Benchmark::SsspFlight => "sssp_flight",
            Benchmark::SsspCage15 => "sssp_cage15",
        }
    }

    /// Parses a configuration [`name`](Benchmark::name) (e.g.
    /// `bfs_usa_road`) back into its benchmark — the inverse used by the
    /// daemon wire protocol, where cells arrive as names.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Runs the benchmark at `scale` under `variant` on the default K20c
    /// configuration. Fails with a typed [`SimError`] — e.g.
    /// [`SimError::ValidationFailed`] naming the benchmark — instead of
    /// panicking, so a sweep can report which configuration broke and
    /// keep going.
    pub fn run(self, variant: Variant, scale: Scale) -> Result<RunReport, SimError> {
        self.run_with(variant, scale, GpuConfig::k20c())
    }

    /// Runs with a caller-supplied base configuration (the AGT-size sweep
    /// of Figure 12 uses this). One-shot cells build their data, program
    /// and simulator fresh; sweeps that revisit benchmarks should build a
    /// [`CellSetup`](crate::CellSetup) instead and amortize the setup.
    pub fn run_with(
        self,
        variant: Variant,
        scale: Scale,
        cfg: GpuConfig,
    ) -> Result<RunReport, SimError> {
        crate::setup::run_cold(self, variant, scale, cfg)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_unique_and_in_paper_order() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
        assert_eq!(names[0], "amr");
        assert_eq!(names[15], "sssp_cage15");
        assert_eq!(Benchmark::BfsCage15.to_string(), "bfs_cage15");
    }

    #[test]
    fn names_round_trip_through_the_parsers() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
        for s in [Scale::Test, Scale::Eval] {
            assert_eq!(Scale::from_name(s.name()), Some(s));
        }
        assert_eq!(Scale::from_name("huge"), None);
    }
}
