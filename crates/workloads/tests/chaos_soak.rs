//! Chaos soak (the supervision tentpole's acceptance harness): fault
//! plans × injected panics × tight budgets × cancellation, composed over
//! every Table-4 benchmark and executed under the supervised sweep. The
//! bar:
//!
//! * **zero escaped panics** — the soak itself completing proves it;
//! * every outcome is **typed or recovered** — `Ok`, an expected
//!   `SimError` variant for its chaos mode, or a structured
//!   [`CrashReport`](gpu_sim::sweep::CrashReport) for the injected
//!   panics (and *only* those);
//! * degradation counters in `Stats` agree with the `LaunchDegraded` /
//!   `LaunchBackoff` / `DeadlineHit` events in the trace;
//! * with no fault and no budget, stats stay **bit-identical** between
//!   the serial and the `smx_jobs = 4` sharded engine.

use gpu_isa::{Dim3, KernelBuilder, Op, Program, Space};
use gpu_sim::sweep::{run_cells_supervised_traced, CellOutcome};
use gpu_sim::{BudgetKind, CancelToken, DegradePolicy, FaultPlan, Gpu, GpuConfig, SimError, Stats};
use gpu_trace::{Category, EventKind, LaunchPath, TraceConfig};
use workloads::{Benchmark, Scale, Variant};

/// A cycle cap most Test-scale runs exceed; cells shorter than it simply
/// finish, which is also a legal outcome.
const CYCLE_CAP: u64 = 8_000;

/// One way to hurt a run. `Panic` injects a closure-level panic (the
/// supervision harness's job); the others go through the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Chaos {
    /// No fault, no budget — the control group.
    Calm,
    /// Forced AGT misses + zero spill storage + one KMU slot: the full
    /// DTBL → device-kernel → host-serialized ladder.
    AgtSqueeze,
    /// Two KMU device-pool slots: saturation backoffs.
    KmuSqueeze,
    /// Device heap denied after cycle 1: typed resource errors allowed.
    HeapFault,
    /// Tight deterministic run budget.
    CycleCap,
    /// A token cancelled before the run starts.
    Cancel,
    /// The cell closure itself panics.
    Panic,
}

const MODES: [Chaos; 7] = [
    Chaos::Calm,
    Chaos::AgtSqueeze,
    Chaos::KmuSqueeze,
    Chaos::HeapFault,
    Chaos::CycleCap,
    Chaos::Cancel,
    Chaos::Panic,
];

fn config_for(mode: Chaos) -> GpuConfig {
    let mut cfg = GpuConfig {
        degrade: DegradePolicy::ladder(),
        ..GpuConfig::k20c()
    };
    match mode {
        Chaos::Calm | Chaos::Panic => {}
        Chaos::AgtSqueeze => {
            cfg.fault = FaultPlan {
                force_agt_overflow: true,
                agt_overflow_capacity: Some(0),
                kmu_device_capacity: Some(1),
                ..FaultPlan::default()
            };
        }
        Chaos::KmuSqueeze => {
            cfg.fault = FaultPlan {
                kmu_device_capacity: Some(2),
                ..FaultPlan::default()
            };
        }
        Chaos::HeapFault => {
            cfg.fault = FaultPlan {
                after_cycle: 1,
                heap_limit_bytes: Some(0),
                ..FaultPlan::default()
            };
        }
        Chaos::CycleCap => cfg.budget.cycle_cap = Some(CYCLE_CAP),
        Chaos::Cancel => {
            let token = CancelToken::new();
            token.cancel();
            cfg.budget.cancel = Some(token);
        }
    }
    cfg
}

/// A resource error a fault plan is allowed to surface.
fn typed_resource_error(e: &SimError) -> bool {
    matches!(
        e,
        SimError::OutOfMemory { .. }
            | SimError::AgtExhausted { .. }
            | SimError::KmuSaturated { .. }
            | SimError::HwqFull { .. }
            | SimError::CycleLimit { .. }
    )
}

/// The whole grid — 16 benchmarks × 7 chaos modes — through the
/// supervised sweep in one pass: panics isolated and quarantined, every
/// other outcome matched against what its chaos mode permits.
#[test]
fn chaos_soak_survives_the_full_grid() {
    let cells: Vec<(Benchmark, Chaos)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| MODES.map(|m| (b, m)))
        .collect();
    let total = cells.len();
    let (outcomes, supervisor_trace) = run_cells_supervised_traced(cells, 4, 1, |&(b, mode)| {
        if mode == Chaos::Panic {
            panic!("chaos: injected panic in {b}");
        }
        b.run_with(Variant::Dtbl, Scale::Test, config_for(mode))
            .map(|r| r.stats)
    });
    assert_eq!(outcomes.len(), total);

    let mut cap_trips = 0usize;
    let mut ladder_recoveries = 0usize;
    let mut crashes = 0usize;
    for ((b, mode), outcome) in &outcomes {
        match (mode, outcome) {
            // The injected panic is persistent, so both attempts crash
            // and the report carries the payload and attempt count.
            (Chaos::Panic, CellOutcome::Crashed(report)) => {
                crashes += 1;
                assert_eq!(report.attempts, 2, "{b}: first run + 1 quarantined retry");
                assert!(
                    report.payload.contains("injected panic"),
                    "{b}: payload lost: {}",
                    report.payload
                );
            }
            (_, CellOutcome::Crashed(report)) => {
                panic!("{b} [{mode:?}]: only injected panics may crash: {report}")
            }
            (Chaos::Panic, _) => panic!("{b}: an injected panic cannot succeed"),

            (Chaos::Calm, CellOutcome::Ok(_)) => {}
            (Chaos::Calm, CellOutcome::Err(e)) => {
                panic!("{b}: the control group must validate: {e}")
            }

            // The ladder absorbs the squeeze for most benchmarks; the
            // rest surface a typed resource error, never anything else.
            (Chaos::AgtSqueeze | Chaos::KmuSqueeze, CellOutcome::Ok(stats)) => {
                if stats.degraded_to_device_kernel > 0
                    || stats.launch_backoffs > 0
                    || stats.degraded_to_host_serial > 0
                {
                    ladder_recoveries += 1;
                }
            }
            (Chaos::AgtSqueeze | Chaos::KmuSqueeze, CellOutcome::Err(e)) => assert!(
                typed_resource_error(e),
                "{b} [{mode:?}]: untyped failure: {e}"
            ),

            (Chaos::HeapFault, CellOutcome::Ok(_)) => {}
            (Chaos::HeapFault, CellOutcome::Err(e)) => assert!(
                typed_resource_error(e),
                "{b} [heap fault]: untyped failure: {e}"
            ),

            (Chaos::CycleCap, CellOutcome::Ok(stats)) => assert!(
                stats.cycles <= CYCLE_CAP,
                "{b}: a run past the cap must have been stopped"
            ),
            (Chaos::CycleCap, CellOutcome::Err(e)) => match e {
                SimError::DeadlineExceeded {
                    budget: BudgetKind::Cycles,
                    cycle,
                    stats,
                } => {
                    cap_trips += 1;
                    assert_eq!(*cycle, CYCLE_CAP, "{b}: must stop exactly at the cap");
                    assert_eq!(stats.cycles, *cycle, "{b}: partial snapshot stamp");
                }
                other => panic!("{b}: cycle cap surfaced as {other}"),
            },

            (Chaos::Cancel, CellOutcome::Err(SimError::Cancelled { stats, cycle })) => {
                assert_eq!(stats.cycles, *cycle, "{b}: partial snapshot stamp");
            }
            (Chaos::Cancel, other) => {
                panic!("{b}: a pre-cancelled token must cancel, got {other:?}")
            }
        }
    }
    assert_eq!(
        crashes,
        Benchmark::ALL.len(),
        "one injected panic per benchmark"
    );
    assert!(
        cap_trips > 0,
        "the cycle cap must trip at least one benchmark"
    );
    assert!(
        ladder_recoveries > 0,
        "at least one squeezed cell must recover via the ladder"
    );

    // The supervisor's flight record: one CellCrashed per attempt and
    // one CellRetried per quarantined re-run, nothing else.
    let mut crashed_events = 0usize;
    let mut retried_events = 0usize;
    for ev in &supervisor_trace.events {
        match ev.kind {
            EventKind::CellCrashed { .. } => crashed_events += 1,
            EventKind::CellRetried { .. } => retried_events += 1,
            other => panic!("unexpected supervisor event: {other:?}"),
        }
    }
    assert_eq!(
        crashed_events,
        2 * crashes,
        "two attempts per persistent panic"
    );
    assert_eq!(retried_events, crashes, "one quarantined retry per crash");
}

/// Counters and events are two views of the same ladder: on a traced
/// squeezed run, each `Stats` degradation counter must equal the number
/// of matching trace events.
#[test]
fn degradation_counters_match_trace_events() {
    let cfg = GpuConfig {
        trace: TraceConfig {
            mask: Category::Launch.bit(),
            ring: 64,
            limit: u32::MAX,
            metrics_interval: 0,
        },
        ..config_for(Chaos::AgtSqueeze)
    };
    let report = Benchmark::Amr
        .run_with(Variant::Dtbl, Scale::Test, cfg)
        .expect("the ladder must carry the squeezed run home");
    let stats = &report.stats;
    let trace = report.trace.expect("tracing was enabled");
    assert_eq!(trace.dropped, 0, "the consistency check needs every event");

    let mut to_fallback = 0u64;
    let mut to_host = 0u64;
    let mut backoffs = 0u64;
    for ev in &trace.events {
        match ev.kind {
            EventKind::LaunchDegraded { to_path, .. } => {
                if to_path == LaunchPath::AggFallback.code() {
                    to_fallback += 1;
                } else if to_path == LaunchPath::HostSerial.code() {
                    to_host += 1;
                }
            }
            EventKind::LaunchBackoff { .. } => backoffs += 1,
            _ => {}
        }
    }
    assert!(stats.degraded_to_device_kernel > 0, "the squeeze must bite");
    assert_eq!(
        to_fallback, stats.degraded_to_device_kernel,
        "rung 1→2 events vs counter"
    );
    assert_eq!(
        to_host, stats.degraded_to_host_serial,
        "rung 2→3 events vs counter"
    );
    assert_eq!(backoffs, stats.launch_backoffs, "backoff events vs counter");
}

/// A budget stop leaves a `DeadlineHit` marker in the trace — exactly
/// one, carrying the budget kind and the limit that tripped.
#[test]
fn budget_stop_is_marked_in_the_trace() {
    let mut prog = Program::new();
    let mut b = KernelBuilder::new("spin", Dim3::x(32), 1);
    let gtid = b.global_tid();
    let base = b.ld_param(0);
    let addr = b.mad(gtid, Op::Imm(4), Op::Reg(base));
    b.st(Space::Global, addr, 0, Op::Reg(gtid));
    let k = prog.add(b.build().unwrap());
    let mut cfg = GpuConfig::test_small();
    cfg.trace = TraceConfig {
        mask: Category::Launch.bit(),
        ring: 16,
        limit: u32::MAX,
        metrics_interval: 0,
    };
    cfg.budget.cycle_cap = Some(3);
    let mut gpu = Gpu::new(cfg, prog);
    let out = gpu.malloc(32 * 4).unwrap();
    gpu.launch(k, 1, &[out], 0).unwrap();
    match gpu.run_to_idle() {
        Err(SimError::DeadlineExceeded {
            budget: BudgetKind::Cycles,
            cycle: 3,
            ..
        }) => {}
        other => panic!("expected a cycle-cap stop at cycle 3, got {other:?}"),
    }
    let trace = gpu.take_trace().expect("tracing was enabled");
    let hits: Vec<_> = trace
        .events
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::DeadlineHit { budget, limit } => Some((ev.cycle, budget, limit)),
            _ => None,
        })
        .collect();
    assert_eq!(
        hits,
        vec![(3, BudgetKind::Cycles.code(), 3)],
        "exactly one DeadlineHit, at the stop cycle, naming the tripped cap"
    );
}

/// The no-chaos control at both engine widths: when no fault fires and
/// no budget is set, a cell's `Stats` must be bit-identical between the
/// serial engine and the sharded engine at `smx_jobs = 4` — chaos
/// plumbing (ladder default on, retry queues, budget checks) costs
/// nothing in determinism when nothing trips it.
#[test]
fn calm_cells_are_bit_identical_serial_vs_sharded() {
    let run = |smx_jobs: usize| -> Vec<(Benchmark, Stats)> {
        gpu_sim::sweep::run_cells(Benchmark::ALL.to_vec(), 4, move |&b| {
            let mut cfg = config_for(Chaos::Calm);
            cfg.smx_jobs = smx_jobs;
            b.run_with(Variant::Dtbl, Scale::Test, cfg).map(|r| r.stats)
        })
        .into_iter()
        .map(|(b, r)| {
            (
                b,
                r.unwrap_or_else(|e| panic!("{b}: calm cell failed: {e}")),
            )
        })
        .collect()
    };
    let serial = run(1);
    let sharded = run(4);
    for ((b, s), (_, p)) in serial.iter().zip(&sharded) {
        assert_eq!(s, p, "{b}: calm stats diverged between engine widths");
    }
}
