//! Deterministic fault-injection sweep: every Table-4 benchmark
//! configuration is run under each fault class of
//! [`FaultPlan`](gpu_sim::FaultPlan), asserting that the simulator either
//! degrades gracefully (spills, device-kernel fallbacks, slower runs with
//! identical results) or fails with a clean typed [`SimError`] — never a
//! panic, and never a silently wrong result.
//!
//! Any panic inside `Benchmark::run_with` fails these tests, so the whole
//! `run_to_idle`/validation path is exercised as a no-panic surface.
//!
//! Each sweep fans its benchmark cells over [`gpu_sim::sweep::run_cells`]
//! worker threads — cells are independent (each builds its own `Gpu`), so
//! the results are identical to a serial loop, just faster. A worker
//! panic propagates when the scope joins, so the no-panic guarantee is
//! still enforced.

use gpu_sim::sweep::run_cells;
use gpu_sim::{DegradePolicy, FaultPlan, GpuConfig, SimError};
use workloads::{Benchmark, Scale, Variant};

/// Worker threads per sweep: bounded below the machine width because
/// cargo's test harness already runs the `#[test]` fns concurrently.
fn jobs() -> usize {
    gpu_sim::sweep::default_jobs().min(4)
}

/// Runs every benchmark under `fault` on worker threads and returns the
/// per-benchmark outcomes in `Benchmark::ALL` order.
fn sweep_all(v: Variant, fault: FaultPlan) -> Vec<(Benchmark, Result<(), SimError>)> {
    run_cells(Benchmark::ALL.to_vec(), jobs(), |&b| {
        let cfg = GpuConfig {
            fault,
            ..GpuConfig::k20c()
        };
        b.run_with(v, Scale::Test, cfg).map(|_| ())
    })
}

/// Asserts the outcome is clean: a validated report or one of the typed
/// errors a fault plan is allowed to surface.
fn assert_typed(b: Benchmark, v: Variant, res: &Result<(), SimError>) {
    if let Err(e) = res {
        assert!(
            matches!(
                e,
                SimError::OutOfMemory { .. }
                    | SimError::AgtExhausted { .. }
                    | SimError::KmuSaturated { .. }
                    | SimError::HwqFull { .. }
                    | SimError::CycleLimit { .. }
            ),
            "{b} [{v}]: fault injection must surface a resource error, got: {e}"
        );
    }
}

/// Forced AGT hash misses push every coalesce through the spill path;
/// spilling is graceful degradation, so every benchmark must still
/// validate.
#[test]
fn forced_agt_overflow_degrades_gracefully() {
    let fault = FaultPlan {
        force_agt_overflow: true,
        ..FaultPlan::default()
    };
    for (b, res) in sweep_all(Variant::Dtbl, fault) {
        res.unwrap_or_else(|e| panic!("{b}: spills must not fail a run: {e}"));
    }
}

/// With spill storage capped at zero on top of forced misses, every
/// aggregated launch falls back to a device kernel — still graceful.
#[test]
fn capped_spill_storage_falls_back_to_device_kernels() {
    let fault = FaultPlan {
        force_agt_overflow: true,
        agt_overflow_capacity: Some(0),
        ..FaultPlan::default()
    };
    for (b, res) in sweep_all(Variant::Dtbl, fault) {
        res.unwrap_or_else(|e| panic!("{b}: fallback must not fail a run: {e}"));
    }
}

/// A heap cap that activates after the host's cycle-0 allocations starves
/// the device-side paths (parameter buffers, pending records, spill
/// descriptors). Runs either complete (no dynamic launches needed the
/// heap) or fail with a typed resource error.
#[test]
fn runtime_heap_exhaustion_is_a_typed_error() {
    let fault = FaultPlan {
        after_cycle: 1,
        heap_limit_bytes: Some(0),
        ..FaultPlan::default()
    };
    let cells: Vec<(Benchmark, Variant)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| [Variant::Cdp, Variant::Dtbl].map(|v| (b, v)))
        .collect();
    let results = run_cells(cells, jobs(), |&(b, v)| {
        let cfg = GpuConfig {
            fault,
            ..GpuConfig::k20c()
        };
        b.run_with(v, Scale::Test, cfg).map(|_| ())
    });
    for ((b, v), res) in &results {
        assert_typed(*b, *v, res);
    }
}

/// A saturated KMU device-kernel pool rejects device launches; the run
/// either needed none (Ok) or fails with `KmuSaturated` — never a panic.
/// Pinned to [`DegradePolicy::strict`]: this is the pre-ladder contract;
/// the default ladder recovers instead
/// (`kmu_saturation_recovers_under_the_ladder`).
#[test]
fn kmu_saturation_is_a_typed_error() {
    let fault = FaultPlan {
        kmu_device_capacity: Some(2),
        ..FaultPlan::default()
    };
    let results = run_cells(Benchmark::ALL.to_vec(), jobs(), |&b| {
        let cfg = GpuConfig {
            fault,
            degrade: DegradePolicy::strict(),
            ..GpuConfig::k20c()
        };
        b.run_with(Variant::Cdp, Scale::Test, cfg).map(|_| ())
    });
    for (b, res) in results {
        assert_typed(b, Variant::Cdp, &res);
    }
}

/// The same saturated KMU under the default degradation ladder: no run
/// aborts any more. Saturated launches wait out deterministic backoffs
/// and retry; every benchmark completes *and validates*, and the ones
/// that actually hit the cap show backoffs in their stats.
#[test]
fn kmu_saturation_recovers_under_the_ladder() {
    let fault = FaultPlan {
        kmu_device_capacity: Some(2),
        ..FaultPlan::default()
    };
    let results = run_cells(Benchmark::ALL.to_vec(), jobs(), |&b| {
        let cfg = GpuConfig {
            fault,
            degrade: DegradePolicy::ladder(),
            ..GpuConfig::k20c()
        };
        b.run_with(Variant::Cdp, Scale::Test, cfg).map(|r| r.stats)
    });
    let mut saturated_runs = 0;
    for (b, res) in results {
        let stats = res.unwrap_or_else(|e| panic!("{b}: the ladder must absorb saturation: {e}"));
        if stats.kmu_saturation_rejections > 0 {
            saturated_runs += 1;
            assert!(
                stats.launch_backoffs > 0,
                "{b}: saturated attempts must show up as backoffs"
            );
        }
    }
    assert!(
        saturated_runs > 0,
        "a 2-slot KMU pool must saturate at least one benchmark"
    );
}

/// The full ladder end-to-end on one benchmark (`amr`, whose refinement
/// bursts keep child kernels resident): forced AGT misses plus zero spill
/// storage deny every aggregated group its descriptor (rung 1 → 2), the
/// single-slot KMU pool saturates the resulting device-kernel fallbacks
/// into backed-off retries, and launches whose retries exhaust execute
/// host-serialized (rung 2 → 3). The run still completes and *validates*,
/// with every stage of the descent visible in the stats.
#[test]
fn full_ladder_descends_to_host_serialized_and_validates() {
    let fault = FaultPlan {
        force_agt_overflow: true,
        agt_overflow_capacity: Some(0),
        kmu_device_capacity: Some(1),
        ..FaultPlan::default()
    };
    let cfg = GpuConfig {
        fault,
        degrade: DegradePolicy::ladder(),
        ..GpuConfig::k20c()
    };
    let report = Benchmark::Amr
        .run_with(Variant::Dtbl, Scale::Test, cfg)
        .expect("the ladder must carry the run to a validated completion");
    let stats = &report.stats;
    assert!(
        stats.degraded_to_device_kernel > 0,
        "rung 1→2: denied aggregated groups must be counted"
    );
    assert!(
        stats.launch_backoffs > 0,
        "rung 2: saturated fallbacks must retry with backoff"
    );
    assert!(
        stats.degraded_to_host_serial > 0,
        "rung 2→3: exhausted retries must host-serialize"
    );
}

/// The benchmarks launch from the host one kernel at a time and drain the
/// machine in between, so even a single-slot hardware work queue never
/// rejects — the cap must be invisible.
#[test]
fn single_slot_hwq_is_enough_for_the_harness() {
    let fault = FaultPlan {
        hwq_capacity: Some(1),
        ..FaultPlan::default()
    };
    for (b, res) in sweep_all(Variant::Dtbl, fault) {
        res.unwrap_or_else(|e| panic!("{b}: serialized host launches fit any queue: {e}"));
    }
}

/// Degraded memory (every completion delayed) slows runs down but must
/// not change any benchmark's result.
#[test]
fn delayed_memory_preserves_results() {
    let fault = FaultPlan {
        mem_delay: 64,
        ..FaultPlan::default()
    };
    for (b, res) in sweep_all(Variant::Dtbl, fault) {
        res.unwrap_or_else(|e| panic!("{b}: a slow memory must only cost cycles: {e}"));
    }
}

/// Fault injection × the two-phase sharded engine: a fault plan that
/// surfaces typed resource errors must produce the *same* per-benchmark
/// outcome — the same error variant on the same benchmark, identical
/// stats on the survivors — whether SMXs step serially or on a worker
/// pool. Deferred shard errors reorder nothing.
#[test]
fn sharded_engine_matches_serial_under_faults() {
    let fault = FaultPlan {
        after_cycle: 1,
        heap_limit_bytes: Some(96 * 1024),
        mem_delay: 16,
        ..FaultPlan::default()
    };
    let run = |smx_jobs: usize| {
        run_cells(Benchmark::ALL.to_vec(), jobs(), move |&b| {
            let cfg = GpuConfig {
                fault,
                smx_jobs,
                ..GpuConfig::k20c()
            };
            b.run_with(Variant::Dtbl, Scale::Test, cfg).map(|r| r.stats)
        })
    };
    let serial = run(1);
    let sharded = run(4);
    for ((b, s), (_, p)) in serial.iter().zip(&sharded) {
        match (s, p) {
            (Ok(ss), Ok(ps)) => assert_eq!(ss, ps, "{b}: stats diverged under faults"),
            (Err(se), Err(pe)) => assert_eq!(se, pe, "{b}: errors diverged under faults"),
            _ => panic!("{b}: one engine failed where the other succeeded: {s:?} vs {p:?}"),
        }
        assert_typed(*b, Variant::Dtbl, &s.clone().map(|_| ()));
    }
}
