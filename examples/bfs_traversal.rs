//! Graph traversal on the simulated GPU: runs the paper's `bfs_citation`
//! benchmark in all five variants and prints the metrics behind Figures
//! 6–11 for it.
//!
//! ```sh
//! cargo run --release --example bfs_traversal
//! ```

use dtbl_repro::workloads::{Benchmark, Scale, Variant};

fn main() {
    println!("BFS on a power-law citation graph (Test scale)\n");
    println!(
        "{:<8} {:>10} {:>9} {:>8} {:>9} {:>9} {:>8} {:>9}",
        "variant", "cycles", "speedup", "warp%", "occup%", "launches", "match%", "wait(cyc)"
    );
    let mut flat_cycles = None;
    for v in Variant::MAIN {
        let r = match Benchmark::BfsCitation.run(v, Scale::Test) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{:<8} ** FAILED: {e}", v.label());
                continue;
            }
        };
        let s = &r.stats;
        let flat = *flat_cycles.get_or_insert(s.cycles);
        println!(
            "{:<8} {:>10} {:>8.2}x {:>7.1}% {:>8.1}% {:>9} {:>7.0}% {:>9.0}",
            v.label(),
            s.cycles,
            flat as f64 / s.cycles.max(1) as f64,
            s.warp_activity_pct(),
            s.smx_occupancy_pct(),
            s.dyn_launches(),
            100.0 * s.match_rate(),
            s.avg_waiting_time(),
        );
    }
    println!("\nThe orderings to look for (paper, Figure 11): CDP < Flat < DTBL < CDPI < DTBLI,");
    println!("with DTBL's aggregated groups coalescing to the resident expansion kernel.");
}
