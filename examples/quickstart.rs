//! Quickstart: build a kernel with the structured builder, run it on the
//! simulated K20c, and read back results and statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dtbl_repro::gpu_isa::{CmpOp, CmpTy, Dim3, KernelBuilder, Op, Program, Space};
use dtbl_repro::gpu_sim::{Gpu, GpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SAXPY-style kernel: out[i] = a * x[i] + y[i] for i < n.
    let mut b = KernelBuilder::new("saxpy", Dim3::x(256), 4);
    let gtid = b.global_tid();
    let n = b.ld_param(0);
    let oob = b.setp(CmpOp::Ge, CmpTy::U32, gtid, Op::Reg(n));
    b.if_(oob, |b| b.exit());
    let a = b.ld_param(1);
    let xbase = b.ld_param(2);
    let ybase = b.ld_param(3);
    let xa = b.mad(gtid, Op::Imm(4), Op::Reg(xbase));
    let x = b.ld(Space::Global, xa, 0);
    let ya = b.mad(gtid, Op::Imm(4), Op::Reg(ybase));
    let y = b.ld(Space::Global, ya, 0);
    let ax = b.imul(a, Op::Reg(x));
    let r = b.iadd(ax, Op::Reg(y));
    // Overwrite y in place.
    b.st(Space::Global, ya, 0, Op::Reg(r));

    let mut prog = Program::new();
    let saxpy = prog.add(b.build()?);

    // A full Tesla K20c: 13 SMXs, 32-entry Kernel Distributor, 5 memory
    // partitions, the Table 3 launch latencies, and a 1024-entry AGT.
    let mut gpu = Gpu::new(GpuConfig::k20c(), prog);

    let n = 10_000u32;
    let x = gpu.malloc(n * 4)?;
    let y = gpu.malloc(n * 4)?;
    gpu.mem_mut()
        .write_slice_u32(x, &(0..n).collect::<Vec<_>>());
    gpu.mem_mut()
        .write_slice_u32(y, &(0..n).map(|i| 2 * i).collect::<Vec<_>>());

    gpu.launch(saxpy, n.div_ceil(256), &[n, 3, x, y], 0)?;
    let stats = gpu.run_to_idle()?;

    println!(
        "saxpy over {n} elements finished in {} cycles",
        stats.cycles
    );
    println!("  warp activity : {:.1}%", stats.warp_activity_pct());
    println!("  SMX occupancy : {:.1}%", stats.smx_occupancy_pct());
    println!("  DRAM efficiency: {:.3}", stats.dram_efficiency());
    println!("  thread blocks : {}", stats.tb_completed);

    // Spot-check the result: y[i] = 3*i + 2*i = 5*i.
    for i in [0u32, 1, 4_999, 9_999] {
        assert_eq!(gpu.mem().read_u32(y + i * 4), 5 * i);
    }
    println!("result verified: y[i] == 5*i");
    Ok(())
}
