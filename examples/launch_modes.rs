//! The launch mechanisms side by side on a synthetic parent/child
//! microbenchmark: one parent warp launches 32 children that each
//! increment a slice of memory. Shows the per-warp API latencies of
//! Table 3 and the scheduling difference between CDP device kernels and
//! DTBL aggregated groups.
//!
//! ```sh
//! cargo run --release --example launch_modes
//! ```

use dtbl_repro::gpu_isa::{Dim3, KernelBuilder, Op, Program, Space};
use dtbl_repro::gpu_sim::{Gpu, GpuConfig, LatencyTable};

fn build(agg: bool) -> (Program, gpu_isa::KernelId, gpu_isa::KernelId) {
    let mut prog = Program::new();

    // Child: 64 threads add 1 to their slice element, looping a bit so
    // the kernel stays resident long enough to observe concurrency.
    let mut cb = KernelBuilder::new("child", Dim3::x(64), 1);
    let base = cb.ld_param(0);
    let gtid = cb.global_tid();
    let addr = cb.mad(gtid, Op::Imm(4), Op::Reg(base));
    let v = cb.ld(Space::Global, addr, 0);
    let acc = cb.mov(Op::Reg(v));
    cb.for_range(Op::Imm(0), Op::Imm(100), |b, _| {
        let t = b.iadd(acc, Op::Imm(1));
        b.mov_to(acc, Op::Reg(t));
    });
    cb.st(Space::Global, addr, 0, Op::Reg(acc));
    let child = prog.add(cb.build().expect("child"));

    // Parent: every lane launches a 1-block child on its own slice.
    let mut pb = KernelBuilder::new("parent", Dim3::x(32), 1);
    let out = pb.ld_param(0);
    let gtid = pb.global_tid();
    let buf = pb.get_param_buf(1);
    let slice = pb.imul(gtid, Op::Imm(64 * 4));
    let base = pb.iadd(slice, Op::Reg(out));
    pb.st_param_word(buf, 0, Op::Reg(base));
    if agg {
        pb.launch_agg(child, Op::Imm(1), buf);
    } else {
        pb.launch_device(child, Op::Imm(1), buf);
    }
    let parent = prog.add(pb.build().expect("parent"));
    (prog, parent, child)
}

fn run(agg: bool) -> (u64, f64, u64) {
    let (prog, parent, child) = build(agg);
    let mut gpu = Gpu::new(GpuConfig::k20c(), prog);
    let out = gpu.malloc(32 * 64 * 4).expect("alloc");
    let warm = gpu.malloc(64 * 64 * 4).expect("alloc warm");
    // Keep a native child instance resident so DTBL groups have an
    // eligible kernel to coalesce with (the paper's Figure 2b setup).
    gpu.launch(child, 64, &[warm], 1).expect("warm");
    gpu.launch(parent, 1, &[out], 0).expect("parent");
    let stats = gpu.run_to_idle().expect("runs").clone();
    for i in 0..(32 * 64) {
        assert_eq!(gpu.mem().read_u32(out + i * 4), 100, "child work applied");
    }
    (
        stats.cycles,
        stats.avg_waiting_time(),
        stats.peak_pending_bytes,
    )
}

fn main() {
    let t = LatencyTable::k20c();
    println!("Table 3 per-warp launch latencies (32 calling lanes):");
    println!(
        "  CDP : stream-create + launch-device = {} cycles",
        t.launch_device(32)
    );
    println!(
        "  DTBL: KDE search + AGT probe        = {} cycles",
        t.agg_launch
    );
    println!(
        "  both: cudaGetParameterBuffer        = {} cycles\n",
        t.get_param_buf(32)
    );

    let (cdp_cycles, cdp_wait, cdp_mem) = run(false);
    let (dtbl_cycles, dtbl_wait, dtbl_mem) = run(true);
    println!("32 dynamic launches of a 64-thread child (plus a resident native child):");
    println!(
        "  CDP : {cdp_cycles:>7} cycles, avg waiting {cdp_wait:>7.0} cycles, peak pending {cdp_mem:>6} B"
    );
    println!(
        "  DTBL: {dtbl_cycles:>7} cycles, avg waiting {dtbl_wait:>7.0} cycles, peak pending {dtbl_mem:>6} B"
    );
    println!(
        "  DTBL speedup over CDP: {:.2}x",
        cdp_cycles as f64 / dtbl_cycles as f64
    );
}

// Re-export so the example compiles standalone.
use dtbl_repro::gpu_isa;
