//! Adaptive mesh refinement — the paper's Figure 2a scenario, where
//! dynamically launched groups coalesce back to the launching kernel
//! itself.
//!
//! ```sh
//! cargo run --release --example amr_refinement
//! ```

use dtbl_repro::gpu_sim::GpuConfig;
use dtbl_repro::workloads::apps::amr;
use dtbl_repro::workloads::data::mesh;
use dtbl_repro::workloads::Variant;

fn main() {
    let field = mesh::combustion_field(256, 3, 7);
    let (cells, _) = amr::host_refine(&field, 64);
    println!("combustion field 256x256, 3 flame fronts -> {cells} refined cells expected\n");
    for v in [Variant::Flat, Variant::Cdp, Variant::Dtbl] {
        let r = match amr::run("amr_example", &field, 64, v, GpuConfig::k20c()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{:<5}  ** FAILED: {e}", v.label());
                continue;
            }
        };
        println!(
            "{:<5}  cycles {:>9}  warp-activity {:>5.1}%  launches {:>4}  coalesced-to-self {:>4}",
            v.label(),
            r.stats.cycles,
            r.stats.warp_activity_pct(),
            r.stats.dyn_launches(),
            r.stats.agg_coalesced,
        );
    }
    println!("\nIn the DTBL run the refinement kernel's groups coalesce to the refinement");
    println!("kernel already resident in the Kernel Distributor (self-coalescing, Fig. 2a).");
}
