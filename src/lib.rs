//! Umbrella crate for the DTBL reproduction workspace.
//!
//! Re-exports the public API of every member crate so the examples and
//! integration tests in this repository have a single import root. See
//! `README.md` for a tour and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub use dtbl_core;
pub use gpu_isa;
pub use gpu_mem;
pub use gpu_sim;
pub use workloads;
